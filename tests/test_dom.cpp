#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "dom/page.h"
#include "js/parser.h"
#include "rivertrail/thread_pool.h"

namespace jsceres::dom {
namespace {

using interp::Interpreter;
using interp::Value;

struct Fixture {
  explicit Fixture(const std::string& source)
      : program(js::parse(source)), interp(program, clock), page(interp) {}

  js::Program program;
  VirtualClock clock;
  Interpreter interp;
  Page page;
};

TEST(Canvas, ParseColors) {
  const Rgba red = parse_color("#f00");
  EXPECT_EQ(red.r, 255);
  EXPECT_EQ(red.g, 0);
  const Rgba c = parse_color("#102030");
  EXPECT_EQ(c.r, 16);
  EXPECT_EQ(c.g, 32);
  EXPECT_EQ(c.b, 48);
  const Rgba rgb = parse_color("rgb(1,2,3)");
  EXPECT_EQ(rgb.b, 3);
  const Rgba rgba = parse_color("rgba(10,20,30,0.5)");
  EXPECT_EQ(rgba.a, 127);
  EXPECT_EQ(parse_color("white").r, 255);
}

TEST(Canvas, FillRectSetsPixels) {
  CanvasContext ctx(10, 10);
  ctx.set_fill_color(Rgba{1, 2, 3, 255});
  ctx.fill_rect(2, 2, 3, 3);
  EXPECT_EQ(ctx.pixel(2, 2).r, 1);
  EXPECT_EQ(ctx.pixel(4, 4).b, 3);
  EXPECT_EQ(ctx.pixel(5, 5).r, 0);
}

TEST(Canvas, FillRectClipsToBounds) {
  CanvasContext ctx(4, 4);
  ctx.set_fill_color(Rgba{9, 9, 9, 255});
  ctx.fill_rect(-5, -5, 100, 100);
  EXPECT_EQ(ctx.pixel(0, 0).r, 9);
  EXPECT_EQ(ctx.pixel(3, 3).r, 9);
}

TEST(Canvas, ImageDataRoundTrip) {
  CanvasContext ctx(4, 4);
  ctx.set_fill_color(Rgba{100, 150, 200, 255});
  ctx.fill_rect(0, 0, 4, 4);
  auto bytes = ctx.get_image_data(0, 0, 4, 4);
  ASSERT_EQ(bytes.size(), 4u * 4 * 4);
  EXPECT_EQ(bytes[0], 100);
  bytes[0] = 42;
  ctx.put_image_data(bytes, 0, 0, 4, 4);
  EXPECT_EQ(ctx.pixel(0, 0).r, 42);
}

TEST(Canvas, ChecksumIsDeterministicAndSensitive) {
  CanvasContext a(8, 8);
  CanvasContext b(8, 8);
  EXPECT_EQ(a.checksum(), b.checksum());
  a.set_fill_color(Rgba{1, 0, 0, 255});
  a.fill_rect(0, 0, 1, 1);
  EXPECT_NE(a.checksum(), b.checksum());
}

TEST(Canvas, CostAccrues) {
  CanvasContext ctx(100, 100);
  ctx.fill_rect(0, 0, 100, 100);
  const auto cost = ctx.drain_cost();
  EXPECT_GT(cost.cpu_ticks, 0);
  // putImageData blocks (compositor hand-off).
  auto bytes = ctx.get_image_data(0, 0, 100, 100);
  ctx.drain_cost();
  ctx.put_image_data(bytes, 0, 0, 100, 100);
  EXPECT_GT(ctx.drain_cost().block_ns, 0);
}

TEST(Canvas, PathStroke) {
  CanvasContext ctx(10, 10);
  ctx.set_stroke_color(Rgba{255, 0, 0, 255});
  ctx.begin_path();
  ctx.move_to(0, 0);
  ctx.line_to(9, 9);
  ctx.stroke_path();
  EXPECT_EQ(ctx.pixel(5, 5).r, 255);
}

TEST(Document, TreeOperations) {
  Document doc;
  auto div = doc.create("div");
  div->set_id("box");
  doc.register_id(div);
  doc.body()->append_child(div);
  EXPECT_EQ(doc.by_id("box"), div);
  EXPECT_EQ(div->parent(), doc.body());
  EXPECT_EQ(doc.node_count(), 3u);  // html, body, div
  doc.body()->remove_child(div.get());
  EXPECT_EQ(doc.node_count(), 2u);
}

TEST(Page, GetElementByIdFromJs) {
  Fixture f(
      "var el = document.getElementById('stage');\n"
      "var result = el === null ? 'missing' : el.id;\n");
  f.page.add_canvas("stage", 16, 16);
  f.interp.run();
  EXPECT_EQ(f.interp.global("result").as_string(), "stage");
}

TEST(Page, CanvasDrawingFromJs) {
  Fixture f(
      "var ctx = document.getElementById('stage').getContext('2d');\n"
      "ctx.fillStyle = '#ff0000';\n"
      "ctx.fillRect(0, 0, 8, 8);\n"
      "var img = ctx.getImageData(0, 0, 2, 2);\n"
      "var result = img.data[0];\n");
  f.page.add_canvas("stage", 16, 16);
  f.interp.run();
  EXPECT_DOUBLE_EQ(f.interp.global("result").as_number(), 255);
  const auto ctx = f.page.context_of(f.page.document().by_id("stage").get());
  ASSERT_NE(ctx, nullptr);
  EXPECT_EQ(ctx->pixel(3, 3).r, 255);
}

TEST(Page, PutImageDataFromJs) {
  Fixture f(
      "var ctx = document.getElementById('stage').getContext('2d');\n"
      "var img = ctx.getImageData(0, 0, 2, 2);\n"
      "for (var i = 0; i < img.data.length; i += 4) { img.data[i] = 77; img.data[i+3] = 255; }\n"
      "ctx.putImageData(img, 0, 0);\n");
  f.page.add_canvas("stage", 4, 4);
  f.interp.run();
  const auto ctx = f.page.context_of(f.page.document().by_id("stage").get());
  EXPECT_EQ(ctx->pixel(1, 1).r, 77);
  EXPECT_EQ(ctx->pixel(3, 3).r, 0);  // outside the written region
}

TEST(Page, CreateAppendFromJs) {
  Fixture f(
      "var div = document.createElement('div');\n"
      "div.setAttribute('id', 'made');\n"
      "document.body.appendChild(div);\n"
      "var result = document.getElementById('made') === div ? 'yes' : 'no';\n");
  f.interp.run();
  EXPECT_EQ(f.interp.global("result").as_string(), "yes");
}

TEST(EventLoop, TimeoutFiresAtDueTime) {
  Fixture f(
      "var fired = -1;\n"
      "setTimeout(function () { fired = performance.now(); }, 30);\n");
  f.interp.run();
  f.page.event_loop().run(/*horizon_ms=*/1000);
  EXPECT_NEAR(f.interp.global("fired").as_number(), 30.0, 1.0);
  // Horizon idles out the rest of the session.
  EXPECT_NEAR(double(f.clock.wall_ns()) / 1e6, 1000.0, 1e-6);
}

TEST(EventLoop, TimeoutOrderingIsStable) {
  Fixture f(
      "var order = '';\n"
      "setTimeout(function () { order += 'b'; }, 20);\n"
      "setTimeout(function () { order += 'a'; }, 10);\n"
      "setTimeout(function () { order += 'c'; }, 20);\n");
  f.interp.run();
  f.page.event_loop().run(100);
  EXPECT_EQ(f.interp.global("order").as_string(), "abc");
}

TEST(EventLoop, ClearTimeoutCancels) {
  Fixture f(
      "var fired = 0;\n"
      "var id = setTimeout(function () { fired = 1; }, 10);\n"
      "clearTimeout(id);\n");
  f.interp.run();
  f.page.event_loop().run(100);
  EXPECT_DOUBLE_EQ(f.interp.global("fired").as_number(), 0);
}

TEST(EventLoop, RafAlignsToFrameBoundary) {
  Fixture f(
      "var t = -1;\n"
      "requestAnimationFrame(function (now) { t = now; });\n");
  f.interp.run();
  f.page.event_loop().run(100);
  EXPECT_NEAR(f.interp.global("t").as_number(), 16.666667, 0.01);
}

TEST(EventLoop, RafChainStopsAtHorizon) {
  Fixture f(
      "var frames = 0;\n"
      "function tick() { frames++; requestAnimationFrame(tick); }\n"
      "requestAnimationFrame(tick);\n");
  f.interp.run();
  f.page.event_loop().run(/*horizon_ms=*/500);
  // ~30 frames in 500 ms at 60 Hz.
  EXPECT_NEAR(f.interp.global("frames").as_number(), 30, 2);
}

TEST(EventLoop, UserEventsDispatchToListeners) {
  Fixture f(
      "var moves = 0;\n"
      "var lastX = -1;\n"
      "addEventListener('mousemove', function (e) { moves++; lastX = e.x; });\n");
  f.interp.run();
  f.page.event_loop().push_user_events({
      UserEvent{10, "mousemove", 100, 50, ""},
      UserEvent{20, "mousemove", 110, 55, ""},
      UserEvent{30, "click", 0, 0, ""},  // no listener: dropped
  });
  f.page.event_loop().run(100);
  EXPECT_DOUBLE_EQ(f.interp.global("moves").as_number(), 2);
  EXPECT_DOUBLE_EQ(f.interp.global("lastX").as_number(), 110);
}

// Frame-graph mode must leave every virtual-time observable bit-identical
// to the serial dispatch loop (the kernel stage is serial-in), while
// committing each frame through the kernel -> upload -> commit pipeline in
// deterministic frame order.
TEST(EventLoop, FrameGraphPreservesVirtualTimeAndCommitsDeterministically) {
  const std::string source =
      "var frames = 0;\n"
      "var ctx = document.getElementById('stage').getContext('2d');\n"
      "function tick() {\n"
      "  frames++;\n"
      "  ctx.fillStyle = 'rgb(' + (frames % 255) + ',0,0)';\n"
      "  ctx.fillRect(0, 0, 8, 8);\n"
      "  requestAnimationFrame(tick);\n"
      "}\n"
      "requestAnimationFrame(tick);\n";

  struct Run {
    double frames = 0;
    std::int64_t wall = 0;
    std::int64_t cpu = 0;
    std::int64_t dispatched = 0;
    std::vector<std::pair<std::int64_t, std::uint64_t>> log;
  };
  const auto run_once = [&](bool frame_graph) {
    Fixture f(source);
    f.page.add_canvas("stage", 8, 8);
    f.interp.run();
    rivertrail::ThreadPool pool(2);
    if (frame_graph) {
      f.page.event_loop().enable_frame_graph(
          pool, f.page.canvas_context("stage").get(), 2);
    }
    f.page.event_loop().run(500);
    Run out;
    out.frames = f.interp.global("frames").as_number();
    out.wall = f.clock.wall_ns();
    out.cpu = f.clock.cpu_ns();
    out.dispatched = f.page.event_loop().tasks_dispatched();
    out.log = f.page.event_loop().frame_log();
    return out;
  };

  const Run serial = run_once(false);
  const Run piped_a = run_once(true);
  const Run piped_b = run_once(true);

  // Virtual time identical with the mode on or off.
  EXPECT_EQ(serial.frames, piped_a.frames);
  EXPECT_EQ(serial.wall, piped_a.wall);
  EXPECT_EQ(serial.cpu, piped_a.cpu);
  EXPECT_EQ(serial.dispatched, piped_a.dispatched);
  EXPECT_TRUE(serial.log.empty());

  // Every frame committed, in frame order, byte-deterministically.
  ASSERT_EQ(std::int64_t(piped_a.log.size()), piped_a.dispatched);
  for (std::size_t i = 0; i < piped_a.log.size(); ++i) {
    EXPECT_EQ(piped_a.log[i].first, std::int64_t(i));
  }
  EXPECT_EQ(piped_a.log, piped_b.log);
}

TEST(EventLoop, FrameGraphInterleavesUserEventsInOrder) {
  const std::string source =
      "var sequence = '';\n"
      "function tick() { sequence += 'F'; requestAnimationFrame(tick); }\n"
      "addEventListener('mousemove', function (e) { sequence += 'E'; });\n"
      "requestAnimationFrame(tick);\n";
  const auto run_once = [&](bool frame_graph) {
    Fixture f(source);
    f.interp.run();
    rivertrail::ThreadPool pool(2);
    if (frame_graph) f.page.event_loop().enable_frame_graph(pool, nullptr, 2);
    f.page.event_loop().push_user_events({
        UserEvent{5, "mousemove", 1, 1, ""},
        UserEvent{40, "mousemove", 2, 2, ""},
        UserEvent{41, "mousemove", 3, 3, ""},
    });
    f.page.event_loop().run(120);
    return f.interp.global("sequence").as_string();
  };
  const std::string serial = run_once(false);
  const std::string piped = run_once(true);
  EXPECT_EQ(serial, piped);
  EXPECT_NE(serial.find('E'), std::string::npos);
  EXPECT_NE(serial.find('F'), std::string::npos);
}

TEST(EventLoop, IdleAdvancesWallButNotCpu) {
  Fixture f("setTimeout(function () { }, 200);\n");
  f.interp.run();
  const auto cpu_before = f.clock.cpu_ns();
  f.page.event_loop().run(400);
  EXPECT_GE(f.clock.wall_ns(), 400'000'000);
  // Only the trivial callback ran: CPU moved a little, wall moved a lot.
  EXPECT_LT(f.clock.cpu_ns() - cpu_before, 1'000'000);
}

TEST(Page, LoadResourceBlocksWallOnly) {
  Fixture f(
      "var loaded = 0;\n"
      "loadResource('sprites.png', 500, function () { loaded = 1; });\n");
  f.interp.run();
  f.page.event_loop().run(2000);
  EXPECT_DOUBLE_EQ(f.interp.global("loaded").as_number(), 1);
  // 40 ms latency + 500 KB * 0.6 ms/KB = 340 ms of wall time minimum.
  EXPECT_GE(f.clock.wall_ns(), 340'000'000);
  EXPECT_LT(f.clock.cpu_ns(), 10'000'000);
}

TEST(Page, LocalStorageRoundTrip) {
  Fixture f(
      "localStorage.setItem('k', 'v1');\n"
      "var result = localStorage.getItem('k');\n"
      "var missing = localStorage.getItem('nope');\n");
  f.interp.run();
  EXPECT_EQ(f.interp.global("result").as_string(), "v1");
  EXPECT_TRUE(f.interp.global("missing").is_null());
}

TEST(Page, WindowDimensionsVisible) {
  Fixture f("var result = window.innerWidth * 10000 + window.innerHeight;\n");
  f.interp.run();
  EXPECT_DOUBLE_EQ(f.interp.global("result").as_number(), 1024.0 * 10000 + 768);
}

}  // namespace
}  // namespace jsceres::dom
