#include <gtest/gtest.h>

#include "analysis/classifier.h"
#include "analysis/nest.h"
#include "js/loop_scanner.h"
#include "rivertrail/thread_pool.h"
#include "workloads/runner.h"

namespace jsceres::workloads {
namespace {

TEST(Workloads, TwelveRegistered) {
  EXPECT_EQ(all_workloads().size(), 12u);
}

TEST(Workloads, NamesMatchTable1) {
  const char* expected[] = {
      "HAAR.js",  "Tear-able Cloth", "CamanJS",        "fluidSim",
      "Harmony",  "Ace",             "MyScript",       "Realtime Raytracing",
      "Normal Mapping", "sigma.js",  "processing.js",  "D3.js"};
  const auto& workloads = all_workloads();
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    EXPECT_EQ(workloads[i].name, expected[i]);
    EXPECT_FALSE(workloads[i].url.empty());
    EXPECT_FALSE(workloads[i].category.empty());
  }
}

TEST(Workloads, KernelScheduleKnobsRunCertifiedPorts) {
  rivertrail::ThreadPool pool(2);
  int ran = 0;
  for (const Workload& w : all_workloads()) {
    const KernelRun result = run_certified_kernel(w, pool);
    if (!result.ran) continue;
    ++ran;
    EXPECT_TRUE(result.outputs_match) << w.name;
    EXPECT_GT(result.par_ms, 0) << w.name;
  }
  // CamanJS, fluidSim, Realtime Raytracing, Tear-able Cloth, Normal Mapping.
  EXPECT_EQ(ran, 5);
  // The divergent raytracer opts into fine-grain splitting.
  EXPECT_EQ(workload_by_name("Realtime Raytracing").kernel_grain, 1);
}

TEST(Workloads, LookupByName) {
  EXPECT_EQ(workload_by_name("Ace").name, "Ace");
  EXPECT_THROW(workload_by_name("nonexistent"), std::out_of_range);
}

TEST(Workloads, MarkerLinesResolve) {
  for (const auto& w : all_workloads()) {
    for (const auto& marker : w.nest_markers) {
      EXPECT_GT(line_of_marker(w.source, marker), 0)
          << w.name << ": marker not found: " << marker;
    }
  }
}

TEST(Workloads, LineOfMarkerCountsNewlines) {
  EXPECT_EQ(line_of_marker("a\nb\nneedle here\n", "needle"), 3);
  EXPECT_EQ(line_of_marker("no such thing", "needle"), 0);
}

/// Every workload must parse, run to completion under every instrumentation
/// mode, and produce deterministic virtual clocks. This is the heaviest
/// suite; it exercises engine + DOM + event loop + all three modes per app.
class WorkloadRun : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadRun, LightweightModeCompletes) {
  const Workload& w = workload_by_name(GetParam());
  auto run = run_workload(w, Mode::Lightweight);
  const auto row = run.table2_row();
  EXPECT_GT(row.total_s, 0);
  EXPECT_GT(row.active_s, 0);
  EXPECT_GT(row.in_loops_s, 0);
  EXPECT_LE(row.active_s, row.total_s + 1e-9);
  EXPECT_LE(row.in_loops_s, row.total_s + 1e-9);
  EXPECT_EQ(run.lightweight->open_loops(), 0);  // balanced enter/exit
}

TEST_P(WorkloadRun, RunsAreDeterministic) {
  const Workload& w = workload_by_name(GetParam());
  auto a = run_workload(w, Mode::Lightweight);
  auto b = run_workload(w, Mode::Lightweight);
  EXPECT_EQ(a.clock.wall_ns(), b.clock.wall_ns());
  EXPECT_EQ(a.clock.cpu_ns(), b.clock.cpu_ns());
  EXPECT_EQ(a.lightweight->in_loops_ns(), b.lightweight->in_loops_ns());
}

TEST_P(WorkloadRun, LoopProfileFindsReportedNests) {
  const Workload& w = workload_by_name(GetParam());
  auto run = run_workload(w, Mode::LoopProfile);
  ASSERT_EQ(run.nest_roots.size(), w.nest_markers.size());
  const auto nests = analysis::build_nests(*run.loops, run.nest_roots);
  ASSERT_EQ(nests.size(), w.nest_markers.size()) << w.name;
  for (const auto& nest : nests) {
    EXPECT_GT(nest.instances, 0) << w.name;
    EXPECT_GT(nest.trips_mean, 0) << w.name;
    EXPECT_GT(nest.runtime_ns, 0) << w.name;
  }
}

TEST_P(WorkloadRun, DependenceModeCompletes) {
  const Workload& w = workload_by_name(GetParam());
  auto run = run_workload(w, Mode::Dependence);
  // Every app has at least one shared-memory access inside loops (paper:
  // "all loops at least read global memory").
  EXPECT_FALSE(run.dependence->summaries().empty()) << w.name;
}

INSTANTIATE_TEST_SUITE_P(AllTwelve, WorkloadRun,
                         ::testing::Values("HAAR.js", "Tear-able Cloth", "CamanJS",
                                           "fluidSim", "Harmony", "Ace", "MyScript",
                                           "Realtime Raytracing", "Normal Mapping",
                                           "sigma.js", "processing.js", "D3.js"));

// ---------------------------------------------------------------------------
// Table 2 / Table 3 shape assertions (the paper's qualitative findings)
// ---------------------------------------------------------------------------

TEST(Shape, EventDrivenAppsAreMostlyIdle) {
  // Harmony, Ace, MyScript: Total >> Active (Table 2's right column shape).
  for (const char* name : {"Harmony", "Ace", "MyScript"}) {
    auto run = run_workload(workload_by_name(name), Mode::Lightweight);
    const auto row = run.table2_row();
    EXPECT_GT(row.total_s / row.active_s, 5.0) << name;
  }
}

TEST(Shape, ComputeAppsAreMostlyActive) {
  for (const char* name : {"fluidSim", "Normal Mapping", "Realtime Raytracing"}) {
    auto run = run_workload(workload_by_name(name), Mode::Lightweight);
    const auto row = run.table2_row();
    EXPECT_GT(row.active_s / row.total_s, 0.5) << name;
  }
}

TEST(Shape, RaytracingLoopsExceedActive) {
  // The paper's anomaly: blocking/suspension inside loops makes wall-clock
  // loop time exceed sampled CPU-active time.
  auto run = run_workload(workload_by_name("Realtime Raytracing"), Mode::Lightweight);
  const auto row = run.table2_row();
  EXPECT_GT(row.in_loops_s, row.active_s);
}

TEST(Shape, HarmonyNestsTouchCanvasEveryIteration) {
  auto run = run_workload(workload_by_name("Harmony"), Mode::LoopProfile);
  const auto nests = analysis::build_nests(*run.loops, run.nest_roots);
  for (const auto& nest : nests) {
    EXPECT_TRUE(nest.touches_canvas);
    EXPECT_GE(nest.dom_touches_per_iteration, 0.5);
  }
}

TEST(Shape, RaytracerRowNestIsCanvasFree) {
  auto run = run_workload(workload_by_name("Realtime Raytracing"), Mode::LoopProfile);
  const auto nests = analysis::build_nests(*run.loops, run.nest_roots);
  ASSERT_EQ(nests.size(), 1u);
  EXPECT_FALSE(nests[0].touches_dom);
  EXPECT_FALSE(nests[0].touches_canvas);
}

TEST(Shape, AceLoopsRunRoughlyOneIteration) {
  auto run = run_workload(workload_by_name("Ace"), Mode::LoopProfile);
  const auto nests = analysis::build_nests(*run.loops, run.nest_roots);
  for (const auto& nest : nests) {
    EXPECT_GE(nest.trips_mean, 1.0);
    EXPECT_LT(nest.trips_mean, 1.5);
  }
}

TEST(Shape, FluidSolverNestDominates) {
  auto run = run_workload(workload_by_name("fluidSim"), Mode::LoopProfile);
  const auto nests = analysis::build_nests(*run.loops, run.nest_roots);
  ASSERT_EQ(nests.size(), 1u);
  EXPECT_GT(nests[0].share_of_loop_time, 0.7);
}

TEST(Shape, NoPolymorphicVariablesInHotLoops) {
  // Paper SS4.2: "our manual inspection did not reveal any polymorphic
  // variables within the computationally-intensive loops". Mechanical proxy:
  // every workload runs to completion without a single TypeError, and the
  // style census confirms purely imperative hot code.
  for (const auto& w : all_workloads()) {
    const js::Program program = js::parse(w.source, w.name);
    const js::StyleCensus census = js::census(program);
    EXPECT_GT(census.imperative_loops(), 0) << w.name;
    EXPECT_EQ(census.functional_op_calls, 0) << w.name;
  }
}

}  // namespace
}  // namespace jsceres::workloads
