// Engine-sandbox tests: hard resource limits (EngineLimits threaded through
// lexer -> parser -> interpreter), recoverable failure paths (the engine
// object stays clean and reusable after every trip), and allocation-failure
// injection across the ledger's charge points.
//
// This binary replaces the global allocator with a counting shim (bottom of
// the file, mirroring tests/test_interp_hotpath.cpp) so the no-leak test can
// assert that repeated construct/trip/destroy cycles return the heap to a
// steady state.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>

#include "interp/interpreter.h"
#include "js/lexer.h"
#include "js/parser.h"
#include "support/clock.h"
#include "support/limits.h"

namespace {
std::atomic<std::int64_t> g_outstanding_allocs{0};
}

namespace jsceres {
namespace {

// ---------------------------------------------------------------------------
// Front-end limits (lexer + parser)
// ---------------------------------------------------------------------------

TEST(ParserLimits, DeepNestingTripsRecoverableParseError) {
  const std::string source =
      std::string(2000, '(') + "1" + std::string(2000, ')') + ";";
  try {
    js::parse(source);
    FAIL() << "expected ParseError";
  } catch (const js::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("nesting too deep"),
              std::string::npos);
    EXPECT_GE(e.line(), 1);
  }
  // The default cap is far below native stack exhaustion, so reaching the
  // catch above *is* the recovery proof; a sane program still parses after.
  EXPECT_NO_THROW(js::parse("var x = (1 + 2) * 3;"));
}

TEST(ParserLimits, CustomDepthCapAppliesToStatementsAndExpressions) {
  EngineLimits limits;
  limits.max_parse_depth = 16;
  std::string stmts;
  for (int i = 0; i < 64; ++i) stmts += "if (1) { ";
  stmts += "x = 1;";
  for (int i = 0; i < 64; ++i) stmts += " }";
  EXPECT_THROW(js::parse(stmts, "<t>", limits), js::ParseError);
  const std::string exprs = std::string(64, '(') + "1" + std::string(64, ')') + ";";
  EXPECT_THROW(js::parse(exprs, "<t>", limits), js::ParseError);
  EXPECT_NO_THROW(js::parse("var y = ((1));", "<t>", limits));
}

TEST(ParserLimits, UnaryChainsAreDepthCounted) {
  // `new new new f()` recurses parse_new -> parse_primary without passing
  // through parse_statement; `!!!x` recurses through parse_unary.
  EngineLimits limits;
  limits.max_parse_depth = 32;
  const std::string news =
      "var a = " + std::string(64, '!') + "1;";
  EXPECT_THROW(js::parse(news, "<t>", limits), js::ParseError);
}

TEST(LexerLimits, TokenCountCap) {
  EngineLimits limits;
  limits.max_tokens = 10;
  try {
    js::lex("var a = 1; var b = 2; var c = 3;", limits);
    FAIL() << "expected LexError";
  } catch (const js::LexError& e) {
    EXPECT_NE(std::string(e.what()).find("token limit"), std::string::npos);
  }
  EXPECT_NO_THROW(js::lex("var a = 1;", limits));
}

TEST(LexerLimits, SourceSizeCap) {
  EngineLimits limits;
  limits.max_source_bytes = 64;
  EXPECT_THROW(js::lex(std::string(65, ' '), limits), js::LexError);
  EXPECT_NO_THROW(js::lex(std::string(64, ' '), limits));
}

TEST(LexerLimits, MalformedInputStaysGraceful) {
  EXPECT_THROW(js::lex("var s = \"unterminated"), js::LexError);
  EXPECT_THROW(js::lex("/* never closed"), js::LexError);
  EXPECT_THROW(js::lex("var s = \"line\nbreak\";"), js::LexError);
  EXPECT_THROW(js::lex("var a = 1 @ 2;"), js::LexError);
}

// ---------------------------------------------------------------------------
// Runtime limits (the hostile-input suite, test-sized)
// ---------------------------------------------------------------------------

interp::InterpreterConfig limited(std::size_t memory_bytes,
                                  std::int64_t max_ticks = -1,
                                  std::size_t max_array = 0,
                                  std::int64_t max_wall_ms = 0) {
  interp::InterpreterConfig config;
  config.max_ticks = max_ticks;
  config.limits.max_memory_bytes = memory_bytes;
  config.limits.max_array_length = max_array;
  config.limits.max_wall_ms = max_wall_ms;
  return config;
}

TEST(RuntimeLimits, UnboundedAllocationLoopTripsMemoryCeiling) {
  const js::Program program =
      js::parse("var a = []; while (true) { a.push(a.length); }");
  VirtualClock clock;
  interp::Interpreter interp(program, clock, nullptr, limited(1u << 20));
  try {
    interp.run();
    FAIL() << "expected EngineError";
  } catch (const interp::EngineError& e) {
    EXPECT_NE(std::string(e.what()).find("memory limit"), std::string::npos);
  }
  EXPECT_EQ(interp.debug_arg_stack_in_use(), 0u);
  // The ledger never accounted past the ceiling.
  EXPECT_LE(interp.ledger().peak(), 1u << 20);
}

TEST(RuntimeLimits, RunawayLoopTripsTickBudget) {
  const js::Program program = js::parse("while (true) { }");
  VirtualClock clock;
  interp::Interpreter interp(program, clock, nullptr, limited(0, 100000));
  EXPECT_THROW(interp.run(), interp::EngineError);
  EXPECT_EQ(interp.debug_arg_stack_in_use(), 0u);
}

TEST(RuntimeLimits, RunawayLoopTripsWallClockWatchdog) {
  const js::Program program = js::parse("var x = 0; while (true) { x = x + 1; }");
  VirtualClock clock;
  interp::Interpreter interp(program, clock, nullptr,
                             limited(0, -1, 0, /*max_wall_ms=*/100));
  try {
    interp.run();
    FAIL() << "expected EngineError";
  } catch (const interp::EngineError& e) {
    EXPECT_NE(std::string(e.what()).find("wall-clock"), std::string::npos);
  }
}

TEST(RuntimeLimits, TenThousandPropertyObjectTripsCeiling) {
  const js::Program program = js::parse(
      "var o = {}; for (var i = 0; i < 10000; i++) { o[\"k\" + i] = i; }");
  VirtualClock clock;
  interp::Interpreter interp(program, clock, nullptr, limited(256u << 10));
  EXPECT_THROW(interp.run(), interp::EngineError);
  EXPECT_EQ(interp.debug_arg_stack_in_use(), 0u);
}

TEST(RuntimeLimits, PathologicalArrayGrowthTripsLengthCap) {
  const js::Program program = js::parse("var a = []; a[50000000] = 1;");
  VirtualClock clock;
  interp::Interpreter interp(program, clock, nullptr,
                             limited(0, -1, /*max_array=*/1000000));
  try {
    interp.run();
    FAIL() << "expected EngineError";
  } catch (const interp::EngineError& e) {
    EXPECT_NE(std::string(e.what()).find("array length"), std::string::npos);
  }
  // The cap check precedes the charge: nothing close to 50M slots was
  // accounted, let alone allocated.
  EXPECT_LT(interp.ledger().peak(), 1u << 20);
}

TEST(RuntimeLimits, ArrayBuiltinsRespectTheCeiling) {
  // Array(n), push, concat and split all pre-charge through the same
  // grow/charge funnel as direct element stores.
  const js::Program ctor = js::parse("var a = new Array(10000000);");
  VirtualClock clock;
  interp::Interpreter interp(ctor, clock, nullptr, limited(1u << 20));
  EXPECT_THROW(interp.run(), interp::EngineError);

  const js::Program concat = js::parse(
      "var a = [1, 2, 3]; var b = a; "
      "for (var i = 0; i < 30; i++) { b = b.concat(b); }");
  VirtualClock clock2;
  interp::Interpreter interp2(concat, clock2, nullptr, limited(1u << 20));
  EXPECT_THROW(interp2.run(), interp::EngineError);
}

TEST(RuntimeLimits, StringDoublingTripsCeiling) {
  const js::Program program = js::parse(
      "var s = \"x\"; while (true) { s = s + s; }");
  VirtualClock clock;
  interp::Interpreter interp(program, clock, nullptr, limited(4u << 20));
  EXPECT_THROW(interp.run(), interp::EngineError);
}

// ---------------------------------------------------------------------------
// Recovery: the engine object is reusable after every kind of trip
// ---------------------------------------------------------------------------

TEST(Recovery, InterpreterIsReusableAfterTickBudgetTrip) {
  // Regression: the budget is armed per run window. The old cumulative
  // comparison made a tripped interpreter re-throw before executing
  // anything, so the second run() would not reach the console.log below.
  const js::Program program =
      js::parse("console.log(\"start\"); while (true) { }");
  VirtualClock clock;
  interp::InterpreterConfig config;
  config.max_ticks = 50000;
  interp::Interpreter interp(program, clock, nullptr, config);
  EXPECT_THROW(interp.run(), interp::EngineError);
  EXPECT_EQ(interp.console_output(), "start\n");
  EXPECT_THROW(interp.run(), interp::EngineError);
  EXPECT_EQ(interp.console_output(), "start\nstart\n")
      << "second run must get a fresh tick budget";
  EXPECT_EQ(interp.debug_arg_stack_in_use(), 0u);
}

TEST(Recovery, InterpreterIsReusableAfterCallDepthTrip) {
  const js::Program program = js::parse(
      "function r(n) { return r(n + 1); } r(0);");
  VirtualClock clock;
  interp::Interpreter interp(program, clock);
  for (int round = 0; round < 2; ++round) {
    try {
      interp.run();
      FAIL() << "expected EngineError (uncaught RangeError)";
    } catch (const interp::EngineError& e) {
      EXPECT_NE(std::string(e.what()).find("RangeError"), std::string::npos);
    }
    EXPECT_EQ(interp.debug_arg_stack_in_use(), 0u)
        << "deep unwind must pop every argument frame (round " << round << ")";
  }
}

TEST(Recovery, CallEntryPointRecoversToo) {
  const js::Program program = js::parse(
      "function spin() { while (true) { } } "
      "function ok() { return 7; }");
  VirtualClock clock;
  interp::InterpreterConfig config;
  config.max_ticks = 50000;
  interp::Interpreter interp(program, clock, nullptr, config);
  interp.run();
  const interp::Value spin = interp.global("spin");
  const interp::Value ok = interp.global("ok");
  EXPECT_THROW(interp.call(spin, interp::Value(), {}), interp::EngineError);
  EXPECT_EQ(interp.debug_arg_stack_in_use(), 0u);
  const interp::Value seven = interp.call(ok, interp::Value(), {});
  EXPECT_EQ(seven.as_number(), 7.0);
}

TEST(Recovery, MemoryTripThenFreshInterpreterOnSharedShapes) {
  // Shape transitions charge before mutating, so a tripped transition must
  // leave the process-wide shape tree consistent for the next engine.
  const char* source =
      "var xs = []; "
      "for (var i = 0; i < 2000; i++) { "
      "  var o = {}; o.a = i; o.b = i; o.c = i; o.d = i; xs.push(o); "
      "}";
  const js::Program program = js::parse(source);
  {
    VirtualClock clock;
    interp::Interpreter interp(program, clock, nullptr, limited(64u << 10));
    EXPECT_THROW(interp.run(), interp::EngineError);
  }
  {
    VirtualClock clock;
    interp::Interpreter interp(program, clock);  // unlimited
    EXPECT_NO_THROW(interp.run());
  }
}

// ---------------------------------------------------------------------------
// Allocation-failure injection
// ---------------------------------------------------------------------------

// Sweeping the failure point across the first charges hits, in order, the
// charge sites of the program below: array literal, EnvPool acquires and
// ArgStack growth (function calls), shape transitions and flat-table builds
// (property adds), element growth (pushes), and dictionary conversion.
class InjectionSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(InjectionSweep, TripIsRecoverableAndLeakFree) {
  const char* source =
      "function mk(i) { var o = {}; o.a = i; o.b = i + 1; o.c = i + 2; "
      "  return o; } "
      "var xs = []; "
      "for (var i = 0; i < 40; i++) { xs.push(mk(i)); xs[i].d = i * 2; } "
      "var o2 = {}; "
      "for (var j = 0; j < 40; j++) { o2[\"k\" + j] = j; } "
      "var s = \"\"; "
      "for (var k = 0; k < 12; k++) { s = s + \"abcdefghabcdefgh\"; }";
  const js::Program program = js::parse(source);
  interp::InterpreterConfig config;
  config.limits.fail_after_n_allocations = GetParam();
  VirtualClock clock;
  interp::Interpreter interp(program, clock, nullptr, config);
  bool tripped = false;
  try {
    interp.run();
  } catch (const interp::EngineError& e) {
    tripped = true;
    EXPECT_NE(std::string(e.what()).find("injected"), std::string::npos);
  }
  EXPECT_EQ(interp.debug_arg_stack_in_use(), 0u);
  if (tripped) {
    // The injection counter keeps counting, so the re-run trips again —
    // but through the same recoverable path, never a crash.
    EXPECT_THROW(interp.run(), interp::EngineError);
    EXPECT_EQ(interp.debug_arg_stack_in_use(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(FailurePoints, InjectionSweep,
                         ::testing::Values(0, 1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89, 144, 233, 1000000));

TEST(Injection, ShapeTreeStaysConsistentAfterInjectedTransitionFailure) {
  // Trip precisely inside shape machinery by making transitions the first
  // charges of the run, then prove a later engine can take the same
  // transitions successfully (the empty map slot is simply retried).
  const char* source = "var o = {}; o.q1 = 1; o.q2 = 2; o.q3 = 3; o.q4 = 4;";
  const js::Program program = js::parse(source);
  for (std::int64_t n = 0; n < 12; ++n) {
    VirtualClock clock;
    interp::InterpreterConfig config;
    config.limits.fail_after_n_allocations = n;
    interp::Interpreter interp(program, clock, nullptr, config);
    try {
      interp.run();
    } catch (const interp::EngineError&) {
    }
  }
  VirtualClock clock;
  interp::Interpreter interp(program, clock);
  EXPECT_NO_THROW(interp.run());
}

TEST(Injection, RepeatedTripCyclesDoNotLeak) {
  const char* source =
      "function mk(i) { var o = {}; o.a = i; o.b = i; return o; } "
      "var xs = []; "
      "for (var i = 0; i < 20; i++) { xs.push(mk(i)); }";
  const js::Program program = js::parse(source);
  // Warm-up: intern atoms, build shared shapes, fault in allocator pools.
  for (int i = 0; i < 3; ++i) {
    VirtualClock clock;
    interp::InterpreterConfig config;
    config.limits.fail_after_n_allocations = 7;
    interp::Interpreter interp(program, clock, nullptr, config);
    try {
      interp.run();
    } catch (const interp::EngineError&) {
    }
  }
  const std::int64_t baseline =
      g_outstanding_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 10; ++i) {
    VirtualClock clock;
    interp::InterpreterConfig config;
    config.limits.fail_after_n_allocations = 7;
    interp::Interpreter interp(program, clock, nullptr, config);
    try {
      interp.run();
    } catch (const interp::EngineError&) {
    }
  }
  const std::int64_t after =
      g_outstanding_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after, baseline)
      << "construct/trip/destroy cycles must return the heap to steady state";
}

TEST(Ledger, ChargesAndReleasesBalanceObservably) {
  AllocationLedger ledger;
  ledger.charge(100);
  ledger.charge(50);
  EXPECT_EQ(ledger.in_use(), 150u);
  EXPECT_EQ(ledger.peak(), 150u);
  ledger.release(50);
  EXPECT_EQ(ledger.in_use(), 100u);
  EXPECT_EQ(ledger.peak(), 150u);
  ledger.release(1000);  // over-release clamps, never underflows
  EXPECT_EQ(ledger.in_use(), 0u);
  EXPECT_EQ(ledger.charges(), 2);
}

TEST(Ledger, ScopeInstallsAndRestoresThreadLocal) {
  EXPECT_EQ(AllocationLedger::current(), nullptr);
  AllocationLedger outer;
  {
    AllocationLedger::Scope outer_scope(&outer);
    EXPECT_EQ(AllocationLedger::current(), &outer);
    AllocationLedger inner;
    {
      AllocationLedger::Scope inner_scope(&inner);
      EXPECT_EQ(AllocationLedger::current(), &inner);
      AllocationLedger::charge_current(64);
      EXPECT_EQ(inner.in_use(), 64u);
      EXPECT_EQ(outer.in_use(), 0u);
    }
    EXPECT_EQ(AllocationLedger::current(), &outer);
  }
  EXPECT_EQ(AllocationLedger::current(), nullptr);
  AllocationLedger::charge_current(64);  // no scope: a no-op, not a crash
}

}  // namespace
}  // namespace jsceres

// ---------------------------------------------------------------------------
// Counting allocator shim (whole-binary): pass-through malloc tracking the
// number of outstanding allocations, so the no-leak test can assert that
// trip cycles return to a steady state. Mirrors tests/test_interp_hotpath.cpp.
// ---------------------------------------------------------------------------

namespace {
void* counted_alloc(std::size_t size) {
  if (void* p = std::malloc(size ? size : 1)) {
    g_outstanding_allocs.fetch_add(1, std::memory_order_relaxed);
    return p;
  }
  throw std::bad_alloc();
}
void counted_free(void* p) noexcept {
  if (p != nullptr) {
    g_outstanding_allocs.fetch_sub(1, std::memory_order_relaxed);
    std::free(p);
  }
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  void* p = std::malloc(size ? size : 1);
  if (p != nullptr) g_outstanding_allocs.fetch_add(1, std::memory_order_relaxed);
  return p;
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  void* p = std::malloc(size ? size : 1);
  if (p != nullptr) g_outstanding_allocs.fetch_add(1, std::memory_order_relaxed);
  return p;
}
void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { counted_free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { counted_free(p); }
