// Property-based tests: randomized sweeps over the core invariants of the
// characterization algebra, the statistics, the printer round-trip, and the
// engine's numeric semantics.
#include <gtest/gtest.h>

#include <numeric>

#include "ceres/char_stack.h"
#include "interp/interpreter.h"
#include "js/ast_printer.h"
#include "js/parser.h"
#include "support/rng.h"
#include "support/str.h"
#include "support/welford.h"

namespace jsceres {
namespace {

// ---------------------------------------------------------------------------
// Characterization algebra invariants
// ---------------------------------------------------------------------------

ceres::Stamp random_stamp(Rng& rng, std::size_t max_depth) {
  ceres::Stamp stamp;
  const std::size_t depth = rng.next_below(max_depth + 1);
  for (std::size_t k = 0; k < depth; ++k) {
    stamp.push_back(ceres::LoopFrame{int(k) + 1,
                                     std::int64_t(rng.next_below(3)),
                                     std::int64_t(rng.next_below(4))});
  }
  return stamp;
}

/// Extend `prefix` into a plausible "later" stack (same loops, same or later
/// iterations, possibly deeper).
ceres::Stamp extend_stamp(Rng& rng, const ceres::Stamp& prefix, std::size_t max_depth) {
  ceres::Stamp out = prefix;
  for (auto& frame : out) {
    frame.iteration += std::int64_t(rng.next_below(3));
  }
  while (out.size() < max_depth && rng.next_below(2) == 0) {
    out.push_back(ceres::LoopFrame{int(out.size()) + 1,
                                   std::int64_t(rng.next_below(3)),
                                   std::int64_t(rng.next_below(4))});
  }
  return out;
}

class CharacterizationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CharacterizationProperty, IdenticalStacksAreNeverProblematic) {
  Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    const ceres::Stamp stamp = random_stamp(rng, 4);
    EXPECT_FALSE(ceres::characterize_creation(stamp, stamp).problematic());
    EXPECT_FALSE(ceres::characterize_flow(stamp, stamp).problematic());
  }
}

TEST_P(CharacterizationProperty, LevelCountMatchesCurrentStack) {
  Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    const ceres::Stamp stamp = random_stamp(rng, 4);
    const ceres::Stamp current = extend_stamp(rng, stamp, 5);
    const auto chr = ceres::characterize_creation(stamp, current);
    EXPECT_EQ(chr.levels.size(), current.size());
    for (std::size_t k = 0; k < current.size(); ++k) {
      EXPECT_EQ(chr.levels[k].loop_id, current[k].loop_id);
    }
  }
}

TEST_P(CharacterizationProperty, NoDependenceOkCombination) {
  // The paper: "dependence ok is not a valid characterization" — sharing
  // across instances implies sharing across iterations.
  Rng rng(GetParam());
  for (int round = 0; round < 300; ++round) {
    const ceres::Stamp a = random_stamp(rng, 5);
    const ceres::Stamp b = random_stamp(rng, 5);
    for (const auto& chr :
         {ceres::characterize_creation(a, b), ceres::characterize_flow(a, b)}) {
      for (const auto& level : chr.levels) {
        EXPECT_FALSE(level.instance_dep && !level.iteration_dep);
      }
    }
  }
}

TEST_P(CharacterizationProperty, FlagsAreMonotoneInDepth) {
  // Once a level is fully shared (instance dep), all deeper levels are too.
  Rng rng(GetParam());
  for (int round = 0; round < 300; ++round) {
    const ceres::Stamp a = random_stamp(rng, 5);
    const ceres::Stamp b = random_stamp(rng, 5);
    const auto chr = ceres::characterize_creation(a, b);
    bool shared = false;
    for (const auto& level : chr.levels) {
      if (shared) {
        EXPECT_TRUE(level.instance_dep && level.iteration_dep);
      }
      shared |= level.instance_dep;
    }
  }
}

TEST_P(CharacterizationProperty, FlowNeverFlagsWritesFromClosedLoops) {
  // A write whose stack diverges at some instance is in the past: no level
  // below the divergence may be flagged.
  Rng rng(GetParam());
  for (int round = 0; round < 300; ++round) {
    ceres::Stamp read = random_stamp(rng, 4);
    if (read.empty()) continue;
    ceres::Stamp write = read;
    const std::size_t divergence = rng.next_below(write.size());
    write[divergence].instance += 1;  // a different (closed) instance
    for (std::size_t k = divergence; k < write.size(); ++k) {
      // flow below the divergence point must not be flagged
    }
    const auto chr = ceres::characterize_flow(write, read);
    for (std::size_t k = divergence; k < chr.levels.size(); ++k) {
      EXPECT_FALSE(chr.levels[k].iteration_dep);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CharacterizationProperty,
                         ::testing::Values(1, 17, 8675309));

// ---------------------------------------------------------------------------
// Welford == naive statistics
// ---------------------------------------------------------------------------

class WelfordProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WelfordProperty, MatchesNaiveComputation) {
  Rng rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 1 + rng.next_below(500);
    std::vector<double> xs(n);
    Welford w;
    for (auto& x : xs) {
      x = rng.next_double() * 1000 - 500;
      w.add(x);
    }
    const double mean = std::accumulate(xs.begin(), xs.end(), 0.0) / double(n);
    double var = 0;
    for (const double x : xs) var += (x - mean) * (x - mean);
    var /= double(n);
    EXPECT_NEAR(w.mean(), mean, 1e-8);
    EXPECT_NEAR(w.variance(), var, 1e-6);
  }
}

TEST_P(WelfordProperty, MergeIsAssociativeEnough) {
  Rng rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    Welford whole;
    Welford left;
    Welford right;
    const std::size_t n = 10 + rng.next_below(200);
    const std::size_t split = rng.next_below(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double x = rng.next_double() * 10;
      whole.add(x);
      (i < split ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WelfordProperty, ::testing::Values(3, 99, 123456));

// ---------------------------------------------------------------------------
// Printer round-trip: parse(print(parse(src))) is structurally stable
// ---------------------------------------------------------------------------

class RoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTrip, PrintedSourceReparsesIdentically) {
  const js::Program first = js::parse(GetParam());
  const std::string printed = js::print(first);
  const js::Program second = js::parse(printed);
  // Same loop structure...
  ASSERT_EQ(second.loop_count(), first.loop_count());
  for (int id = 1; id <= first.loop_count(); ++id) {
    EXPECT_EQ(int(second.loop(id).kind), int(first.loop(id).kind));
  }
  // ...and printing again is a fixed point.
  EXPECT_EQ(js::print(second), printed);
}

TEST_P(RoundTrip, PrintedSourceBehavesIdentically) {
  js::Program first = js::parse(GetParam());
  VirtualClock c1;
  interp::Interpreter i1(first, c1);
  i1.run();

  js::Program second = js::parse(js::print(js::parse(GetParam())));
  VirtualClock c2;
  interp::Interpreter i2(second, c2);
  i2.run();

  EXPECT_EQ(i1.console_output(), i2.console_output());
}

INSTANTIATE_TEST_SUITE_P(
    Programs, RoundTrip,
    ::testing::Values(
        "var x = 1 + 2 * 3; console.log(x);",
        "for (var i = 0; i < 5; i++) { console.log(i % 2 ? 'odd' : 'even'); }",
        "var o = {a: [1, 2], b: 'txt'}; for (var k in o) { console.log(k, o[k]); }",
        "function f(a, b) { return a > b ? a - b : b - a; } console.log(f(3, 9));",
        "var n = 0; while (n < 4) { n += 1; if (n === 2) { continue; } console.log(n); }",
        "var s = 0; do { s = (s << 1) | 1; } while (s < 20); console.log(s, ~s, -s);",
        "try { throw {message: 'x'}; } catch (e) { console.log(e.message); } finally { console.log('f'); }",
        "var fns = []; [1, 2, 3].forEach(function (v) { fns.push(function () { return v * v; }); }); console.log(fns[2]());",
        "var a = [5, 3, 1]; a.sort(function (x, y) { return x - y; }); console.log(a.join('-'), a.length, delete a[0], typeof a);",
        "function Point(x) { this.x = x; } Point.prototype.d = function () { return this.x * 2; }; console.log(new Point(21).d());"));

// ---------------------------------------------------------------------------
// Engine numeric semantics vs C++ doubles
// ---------------------------------------------------------------------------

class NumericProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NumericProperty, ArithmeticMatchesHostDoubles) {
  Rng rng(GetParam());
  for (int round = 0; round < 40; ++round) {
    const double a = rng.next_double() * 2000 - 1000;
    const double b = rng.next_double() * 20 - 10;
    const std::string source = "var result = (" + str::fixed(a, 6) + " * " +
                               str::fixed(b, 6) + ") + (" + str::fixed(a, 6) +
                               " - " + str::fixed(b, 6) + ") / 3;";
    js::Program program = js::parse(source);
    VirtualClock clock;
    interp::Interpreter interp(program, clock);
    interp.run();
    const double av = std::strtod(str::fixed(a, 6).c_str(), nullptr);
    const double bv = std::strtod(str::fixed(b, 6).c_str(), nullptr);
    EXPECT_DOUBLE_EQ(interp.global("result").as_number(), av * bv + (av - bv) / 3);
  }
}

TEST_P(NumericProperty, BitwiseMatchesInt32Semantics) {
  Rng rng(GetParam());
  for (int round = 0; round < 40; ++round) {
    const auto a = std::int32_t(rng.next_u64());
    const auto b = std::int32_t(rng.next_u64());
    const std::string source = "var result = (" + std::to_string(a) + " ^ " +
                               std::to_string(b) + ") | (" + std::to_string(a) +
                               " & " + std::to_string(b) + ");";
    js::Program program = js::parse(source);
    VirtualClock clock;
    interp::Interpreter interp(program, clock);
    interp.run();
    EXPECT_DOUBLE_EQ(interp.global("result").as_number(), double((a ^ b) | (a & b)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NumericProperty, ::testing::Values(5, 11));

}  // namespace
}  // namespace jsceres
