#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "rivertrail/kernels.h"
#include "rivertrail/parallel_for.h"
#include "rivertrail/thread_pool.h"
#include "rivertrail/validator.h"

namespace jsceres::rivertrail {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  CompletionGate gate{10};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&] {
      counter.fetch_add(1);
      gate.arrive();
    });
  }
  gate.wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&] { counter.fetch_add(1); });
    }
  }  // join
  EXPECT_EQ(counter.load(), 100);
}

class ParallelForTest : public ::testing::TestWithParam<Schedule> {};

TEST_P(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(
      pool, 0, 1000,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) hits[std::size_t(i)].fetch_add(1);
      },
      GetParam());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_P(ParallelForTest, EmptyAndSingletonRanges) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  parallel_for(
      pool, 5, 5, [&](std::int64_t, std::int64_t) { calls.fetch_add(1); },
      GetParam());
  EXPECT_EQ(calls.load(), 0);
  parallel_for(
      pool, 5, 6,
      [&](std::int64_t lo, std::int64_t hi) {
        EXPECT_EQ(lo, 5);
        EXPECT_EQ(hi, 6);
        calls.fetch_add(1);
      },
      GetParam());
  EXPECT_EQ(calls.load(), 1);
}

TEST_P(ParallelForTest, MatchesSequentialSum) {
  ThreadPool pool(2);
  std::vector<double> data(4096);
  std::iota(data.begin(), data.end(), 0.0);
  std::vector<double> out(data.size());
  parallel_for(
      pool, 0, std::int64_t(data.size()),
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          out[std::size_t(i)] = data[std::size_t(i)] * 3;
        }
      },
      GetParam());
  for (std::size_t i = 0; i < data.size(); ++i) EXPECT_EQ(out[i], data[i] * 3);
}

INSTANTIATE_TEST_SUITE_P(Schedules, ParallelForTest,
                         ::testing::Values(Schedule::Static, Schedule::Dynamic));

TEST(ParMap, TransformsElements) {
  ThreadPool pool(2);
  std::vector<int> in(257);
  std::iota(in.begin(), in.end(), 0);
  std::vector<int> out;
  par_map(pool, in, out, [](int v) { return v * v; });
  ASSERT_EQ(out.size(), in.size());
  EXPECT_EQ(out[16], 256);
  EXPECT_EQ(out[256], 256 * 256);
}

TEST(ParReduce, MatchesSequentialAndIsDeterministic) {
  ThreadPool pool(2);
  std::vector<double> in(10000);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = 0.1 * double(i % 97);
  const double seq = std::accumulate(in.begin(), in.end(), 0.0);
  const double par1 = par_reduce(
      pool, in, 0.0, [](double v) { return v; },
      [](double a, double b) { return a + b; });
  const double par2 = par_reduce(
      pool, in, 0.0, [](double v) { return v; },
      [](double a, double b) { return a + b; });
  EXPECT_DOUBLE_EQ(par1, par2);  // chunk-ordered combine: run-to-run stable
  EXPECT_NEAR(par1, seq, 1e-9);
}

TEST(ParReduce, EmptyInputYieldsIdentity) {
  ThreadPool pool(2);
  const std::vector<int> empty;
  const int result = par_reduce(
      pool, empty, 42, [](int v) { return v; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(result, 42);
}

// ---------------------------------------------------------------------------
// Kernel ports: parallel == sequential
// ---------------------------------------------------------------------------

TEST(Kernels, PixelFilterMatches) {
  ThreadPool pool(2);
  auto seq = kernels::make_test_image(64, 48, 1);
  auto par = seq;
  kernels::pixel_filter_seq(seq, 15, 1.3);
  kernels::pixel_filter_par(pool, par, 15, 1.3);
  EXPECT_EQ(seq, par);
}

TEST(Kernels, PixelFilterClampsChannels) {
  std::vector<std::uint8_t> img = {250, 5, 128, 255};
  kernels::pixel_filter_seq(img, 100, 2.0);
  EXPECT_EQ(img[0], 255);  // clamped high
  EXPECT_EQ(img[3], 255);  // alpha untouched
}

TEST(Kernels, FluidDiffuseMatchesAndKeepsBoundary) {
  ThreadPool pool(2);
  const int n = 33;
  std::vector<double> src(std::size_t(n + 2) * std::size_t(n + 2));
  for (std::size_t i = 0; i < src.size(); ++i) src[i] = double(i % 13);
  std::vector<double> seq;
  std::vector<double> par;
  kernels::fluid_diffuse_seq(src, seq, n, 0.2);
  kernels::fluid_diffuse_par(pool, src, par, n, 0.2);
  EXPECT_EQ(seq, par);
  // Boundary preserved.
  EXPECT_EQ(seq[0], src[0]);
  EXPECT_EQ(seq.back(), src.back());
}

TEST(Kernels, RaytraceMatchesAcrossSchedules) {
  ThreadPool pool(2);
  kernels::RayScene scene;
  scene.width = 32;
  scene.height = 24;
  std::vector<std::uint8_t> seq;
  std::vector<std::uint8_t> par_static;
  std::vector<std::uint8_t> par_dynamic;
  kernels::raytrace_seq(scene, seq);
  kernels::raytrace_par(pool, scene, par_static, Schedule::Static);
  kernels::raytrace_par(pool, scene, par_dynamic, Schedule::Dynamic);
  EXPECT_EQ(seq, par_static);
  EXPECT_EQ(seq, par_dynamic);
}

TEST(Kernels, RaytraceDepthChangesImage) {
  kernels::RayScene shallow;
  shallow.width = 16;
  shallow.height = 16;
  shallow.max_depth = 0;
  kernels::RayScene deep = shallow;
  deep.max_depth = 4;
  std::vector<std::uint8_t> a;
  std::vector<std::uint8_t> b;
  kernels::raytrace_seq(shallow, a);
  kernels::raytrace_seq(deep, b);
  EXPECT_NE(a, b);  // reflections actually recurse
}

TEST(Kernels, NormalMapMatches) {
  ThreadPool pool(2);
  const auto height = kernels::make_height_field(40, 30, 9);
  std::vector<std::uint8_t> seq;
  std::vector<std::uint8_t> par;
  kernels::normal_map_seq(height, 40, 30, 0.3, 0.5, 0.8, seq);
  kernels::normal_map_par(pool, height, 40, 30, 0.3, 0.5, 0.8, par);
  EXPECT_EQ(seq, par);
}

TEST(Kernels, ClothIntegrateMatchesAndRespectsPins) {
  ThreadPool pool(2);
  auto seq = kernels::make_cloth(20, 15);
  auto par = seq;
  for (int step = 0; step < 3; ++step) {
    kernels::cloth_integrate_seq(seq, 9.8, 0.016);
    kernels::cloth_integrate_par(pool, par, 9.8, 0.016);
  }
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_DOUBLE_EQ(seq[i].x, par[i].x);
    EXPECT_DOUBLE_EQ(seq[i].y, par[i].y);
    if (seq[i].pinned) {
      EXPECT_DOUBLE_EQ(seq[i].y, par[i].py);  // pins never move
    }
  }
}

TEST(Kernels, NBodyComMatchesWithinTolerance) {
  ThreadPool pool(2);
  auto seq = kernels::make_bodies(5000, 3);
  auto par = seq;
  const auto seq_com = kernels::nbody_step_seq(seq, 0.02);
  const auto par_com = kernels::nbody_step_par(pool, par, 0.02);
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_DOUBLE_EQ(seq[i].x, par[i].x);
    EXPECT_DOUBLE_EQ(seq[i].vy, par[i].vy);
  }
  // The reduction reassociates floating point: tolerance, not equality.
  EXPECT_NEAR(seq_com.x, par_com.x, 1e-9);
  EXPECT_NEAR(seq_com.y, par_com.y, 1e-9);
  EXPECT_NEAR(seq_com.m, par_com.m, 1e-9);
}

TEST(Validator, AllKernelsValidate) {
  ThreadPool pool(2);
  const auto results = validate_all(pool, 0.05);
  ASSERT_EQ(results.size(), 6u);
  for (const auto& r : results) {
    EXPECT_TRUE(r.outputs_match) << r.kernel << " max err " << r.max_abs_error;
    EXPECT_GT(r.seq_ms, 0);
    EXPECT_GT(r.par_ms, 0);
  }
}

TEST(Validator, RenderMentionsThreadCount) {
  ThreadPool pool(2);
  const auto results = validate_all(pool, 0.05);
  const std::string table = render_validation_table(results, pool.size());
  EXPECT_NE(table.find("2 thread(s)"), std::string::npos);
  EXPECT_NE(table.find("pixel_filter"), std::string::npos);
}

}  // namespace
}  // namespace jsceres::rivertrail
