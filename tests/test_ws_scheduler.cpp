// Work-stealing runtime tests: Chase–Lev deque invariants, steal-heavy
// stress, parallel_for edge cases, nested parallelism, injection fairness,
// and exception plumbing. The steal stress tests are the ones the
// -DJSCERES_TSAN=ON build is expected to keep clean.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "rivertrail/parallel_for.h"
#include "rivertrail/parallel_pipeline.h"
#include "rivertrail/task.h"
#include "rivertrail/task_graph.h"
#include "rivertrail/thread_pool.h"
#include "rivertrail/ws_deque.h"

namespace jsceres::rivertrail {
namespace {

TEST(Task, InlineTaskRunsWithoutHeap) {
  int hits = 0;
  int* hits_ptr = &hits;
  Task task = Task::inline_of([hits_ptr] { ++*hits_ptr; });
  ASSERT_TRUE(bool(task));
  task.run();
  EXPECT_EQ(hits, 1);
}

TEST(Task, BoxedTaskRunsArbitraryCallable) {
  auto big = std::make_shared<std::vector<int>>(100, 7);
  int sum = 0;
  Task task = Task::boxed([big, &sum] { sum = (*big)[0] + int(big->size()); });
  task.run();
  EXPECT_EQ(sum, 107);
}

TEST(WsDeque, OwnerPushPopIsLifo) {
  WsDeque deque(8);
  Task tasks[3];
  for (auto& task : tasks) task = Task::inline_of([] {});
  EXPECT_TRUE(deque.push(&tasks[0]));
  EXPECT_TRUE(deque.push(&tasks[1]));
  EXPECT_TRUE(deque.push(&tasks[2]));
  EXPECT_EQ(deque.pop(), &tasks[2]);
  EXPECT_EQ(deque.pop(), &tasks[1]);
  EXPECT_EQ(deque.pop(), &tasks[0]);
  EXPECT_EQ(deque.pop(), nullptr);
}

TEST(WsDeque, StealIsFifoAndPushRefusesWhenFull) {
  WsDeque deque(4);
  Task tasks[5];
  for (auto& task : tasks) task = Task::inline_of([] {});
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(deque.push(&tasks[i]));
  EXPECT_FALSE(deque.push(&tasks[4]));  // full: caller keeps the task
  EXPECT_EQ(deque.steal(), &tasks[0]);  // oldest first
  EXPECT_TRUE(deque.push(&tasks[4]));   // slot freed by the steal
  EXPECT_EQ(deque.steal(), &tasks[1]);
}

// Concurrent deque torture: one owner pushing/popping, several thieves
// stealing; every pushed task must be executed exactly once, by somebody.
// Each task gets its own slot (the pool recycles slab slots through an
// acquire/release free list; here distinct slots keep the test focused on
// the deque itself).
TEST(WsDeque, ConcurrentOwnerAndThievesCoverAllTasks) {
  constexpr int kTasks = 20000;
  constexpr int kThieves = 3;
  WsDeque deque(256);
  std::vector<Task> slots(kTasks);
  std::vector<std::atomic<int>> hits(kTasks);
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (Task* task = deque.steal()) {
          Task local = *task;
          local.run();
        }
      }
    });
  }

  for (int i = 0; i < kTasks; ++i) {
    std::atomic<int>* hit = &hits[i];
    slots[std::size_t(i)] =
        Task::inline_of([hit] { hit->fetch_add(1, std::memory_order_relaxed); });
    while (!deque.push(&slots[std::size_t(i)])) {
      if (Task* own = deque.pop()) {
        Task local = *own;
        local.run();
      }
    }
    if (i % 7 == 0) {
      if (Task* own = deque.pop()) {
        Task local = *own;
        local.run();
      }
    }
  }
  // Drain what the thieves haven't taken, then stop them.
  while (Task* task = deque.pop()) {
    Task local = *task;
    local.run();
  }
  done.store(true, std::memory_order_release);
  for (auto& thief : thieves) thief.join();

  // A thief may have claimed a task (CAS succeeded) but not yet bumped the
  // hit before joining — join synchronizes, so by here every claimed task
  // has run. Every index must be exactly 1.
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_EQ(hits[std::size_t(i)].load(), 1) << "task " << i;
  }
}

class WorkStealingPoolTest : public ::testing::TestWithParam<unsigned> {};

// Steal-heavy stress: many tiny divergent tasks; every index must execute
// exactly once. This is the primary TSan target.
TEST_P(WorkStealingPoolTest, StealStressEveryIndexExactlyOnce) {
  ThreadPool pool(GetParam());
  constexpr std::int64_t kN = 50000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(
      pool, 0, kN,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          // Divergent per-iteration cost: mostly trivial, occasionally
          // heavy, so ranges split and steals actually happen.
          if (i % 257 == 0) {
            volatile double sink = 0;
            for (int r = 0; r < 500; ++r) sink = sink + double(r);
          }
          hits[std::size_t(i)].fetch_add(1, std::memory_order_relaxed);
        }
      },
      Schedule::Static, /*grain=*/1);
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[std::size_t(i)].load(), 1) << "index " << i;
  }
}

// Deep-split steal-half stress: grain 1 over a large range whose heavy band
// sits at the FRONT, so the first owner keeps hitting the shed check while
// thieves are hungry. Under the steal-half discipline each shed hands off
// the whole top half of the victim's remaining range and the thief
// re-splits it locally; exactly-once execution must survive arbitrarily
// deep shed/re-split cascades, repeatedly on a warm pool.
TEST_P(WorkStealingPoolTest, StealHalfDeepSplitStress) {
  ThreadPool pool(GetParam());
  constexpr std::int64_t kN = 100000;
  constexpr int kRounds = 3;
  std::vector<std::atomic<int>> hits(kN);
  for (int round = 0; round < kRounds; ++round) {
    parallel_for(
        pool, 0, kN,
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            // Heavy head: the leading ranges are the expensive ones, so
            // sheds happen while the victim still owns most of the range.
            if (i < kN / 8 && i % 97 == 0) {
              volatile double sink = 0;
              for (int r = 0; r < 400; ++r) sink = sink + double(r);
            }
            hits[std::size_t(i)].fetch_add(1, std::memory_order_relaxed);
          }
        },
        Schedule::Static, /*grain=*/1);
  }
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[std::size_t(i)].load(), kRounds) << "index " << i;
  }
}

TEST_P(WorkStealingPoolTest, RepeatedSmallDispatches) {
  ThreadPool pool(GetParam());
  for (int round = 0; round < 200; ++round) {
    std::atomic<std::int64_t> sum{0};
    parallel_for(pool, 0, 64, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) sum.fetch_add(i, std::memory_order_relaxed);
    });
    ASSERT_EQ(sum.load(), 64 * 63 / 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, WorkStealingPoolTest,
                         ::testing::Values(2u, 4u, 8u));

TEST(ParallelForEdge, EmptyRange) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  parallel_for(pool, 10, 10, [&](std::int64_t, std::int64_t) { calls.fetch_add(1); });
  parallel_for(pool, 10, 5, [&](std::int64_t, std::int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForEdge, FewerIterationsThanWorkers) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  parallel_for(pool, 0, 3, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) hits[std::size_t(i)].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForEdge, GrainOfOneSplitsToSingletons) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(512);
  parallel_for(
      pool, 0, 512,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) hits[std::size_t(i)].fetch_add(1);
      },
      Schedule::Static, /*grain=*/1);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForEdge, SingleWorkerPoolRunsInline) {
  ThreadPool pool(1);
  std::vector<int> hits(1000, 0);  // no atomics needed: must be sequential
  parallel_for(pool, 0, 1000, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) hits[std::size_t(i)] += 1;
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForEdge, NegativeAndOffsetRanges) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> sum{0};
  parallel_for(pool, -100, 100, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), -100);  // sum of -100..99
}

// Nested parallel_for from inside a task must not deadlock: the inner join
// drains the worker's own deque instead of blocking the thread.
TEST(ParallelForNested, InnerLoopInsideOuterTask) {
  ThreadPool pool(4);
  constexpr std::int64_t kOuter = 16;
  constexpr std::int64_t kInner = 256;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  parallel_for(
      pool, 0, kOuter,
      [&](std::int64_t olo, std::int64_t ohi) {
        for (std::int64_t o = olo; o < ohi; ++o) {
          parallel_for(
              pool, 0, kInner,
              [&, o](std::int64_t lo, std::int64_t hi) {
                for (std::int64_t i = lo; i < hi; ++i) {
                  hits[std::size_t(o * kInner + i)].fetch_add(1,
                                                              std::memory_order_relaxed);
                }
              },
              Schedule::Static, /*grain=*/8);
        }
      },
      Schedule::Static, /*grain=*/1);
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ParallelForNested, NestedSubmitFromTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  CompletionGate outer{4};
  for (int i = 0; i < 4; ++i) {
    pool.submit([&] {
      CompletionGate inner{2};
      for (int j = 0; j < 2; ++j) {
        pool.submit([&] {
          counter.fetch_add(1);
          inner.arrive();
        });
      }
      // Waiting inside a worker would idle one thread; helping instead is
      // what ThreadPool::try_run_one is for. done() is advisory — the
      // destruction handshake before `inner` leaves scope is wait().
      while (!inner.done()) {
        if (!pool.try_run_one()) std::this_thread::yield();
      }
      inner.wait();
      outer.arrive();
    });
  }
  outer.wait();
  EXPECT_EQ(counter.load(), 8);
}

TEST(ParallelForExceptions, BodyThrowRethrownAtCallSiteNoDeadlock) {
  ThreadPool pool(4);
  for (const Schedule schedule : {Schedule::Static, Schedule::Dynamic}) {
    EXPECT_THROW(
        parallel_for(
            pool, 0, 10000,
            [&](std::int64_t lo, std::int64_t) {
              if (lo >= 5000) throw std::runtime_error("kernel fault");
            },
            schedule),
        std::runtime_error);
  }
  // Pool still serviceable after the failed loops.
  std::atomic<int> ok{0};
  parallel_for(pool, 0, 100, [&](std::int64_t lo, std::int64_t hi) {
    ok.fetch_add(int(hi - lo), std::memory_order_relaxed);
  });
  EXPECT_EQ(ok.load(), 100);
}

TEST(ParallelForExceptions, ParReduceThrowPropagates) {
  ThreadPool pool(4);
  std::vector<int> in(10000, 1);
  EXPECT_THROW(par_reduce(
                   pool, in, 0,
                   [](int v) {
                     if (v == 1) throw std::runtime_error("transform fault");
                     return v;
                   },
                   [](int a, int b) { return a + b; }),
               std::runtime_error);
}

TEST(ParReduceDeterminism, StableAcrossRunsAndSchedulingNoise) {
  ThreadPool pool(4);
  std::vector<double> in(30011);  // prime-ish size: uneven chunk boundaries
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = (double(i % 1009) - 504.0) * 1e-3;
  }
  const auto reduce_once = [&] {
    return par_reduce(
        pool, in, 0.0, [](double v) { return v * 1.000001 + 1e-7; },
        [](double a, double b) { return a + b; });
  };
  const double first = reduce_once();
  for (int run = 0; run < 20; ++run) {
    // Concurrent noise so steals land differently run to run.
    std::atomic<int> noise{0};
    parallel_for(pool, 0, 1000, [&](std::int64_t lo, std::int64_t hi) {
      noise.fetch_add(int(hi - lo), std::memory_order_relaxed);
    });
    ASSERT_EQ(reduce_once(), first) << "run " << run;  // bitwise equal
  }
}

TEST(ThreadPoolInjection, SubmitBulkRunsEveryTask) {
  ThreadPool pool(3);
  constexpr int kTasks = 500;
  std::vector<std::atomic<int>> hits(kTasks);
  CompletionGate gate{kTasks};
  std::vector<std::function<void()>> batch;
  batch.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    batch.push_back([&, i] {
      hits[std::size_t(i)].fetch_add(1, std::memory_order_relaxed);
      gate.arrive();
    });
  }
  pool.submit_bulk(std::move(batch));
  gate.wait();
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolInjection, RoundRobinReachesAllWorkersUnderLoad) {
  ThreadPool pool(4);
  constexpr int kTasks = 2000;
  std::atomic<int> counter{0};
  CompletionGate gate{kTasks};
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&] {
      counter.fetch_add(1, std::memory_order_relaxed);
      gate.arrive();
    });
  }
  gate.wait();
  EXPECT_EQ(counter.load(), kTasks);
}

// ---------------------------------------------------------------------------
// Task graph: dependency-counter retirement, exception gating, nesting.
// ---------------------------------------------------------------------------

TEST(TaskGraph, DiamondRespectsDependenciesAndRunsEveryNode) {
  ThreadPool pool(4);
  TaskGraph graph(pool);
  std::atomic<int> order{0};
  std::atomic<int> at_a{-1}, at_b{-1}, at_c{-1}, at_d{-1};
  const auto a = graph.add([&] { at_a = order.fetch_add(1); });
  const auto b = graph.add([&] { at_b = order.fetch_add(1); });
  const auto c = graph.add([&] { at_c = order.fetch_add(1); });
  const auto d = graph.add([&] { at_d = order.fetch_add(1); });
  graph.depend(a, b);
  graph.depend(a, c);
  graph.depend(b, d);
  graph.depend(c, d);
  graph.run();
  EXPECT_EQ(order.load(), 4);
  EXPECT_LT(at_a.load(), at_b.load());
  EXPECT_LT(at_a.load(), at_c.load());
  EXPECT_LT(at_b.load(), at_d.load());
  EXPECT_LT(at_c.load(), at_d.load());
}

TEST(TaskGraph, WideFanInRetiresExactlyOnce) {
  ThreadPool pool(4);
  TaskGraph graph(pool);
  constexpr int kFeeders = 64;
  std::atomic<int> fed{0};
  std::atomic<int> sink_runs{0};
  int observed_at_sink = -1;
  const auto sink = graph.add([&] {
    observed_at_sink = fed.load(std::memory_order_relaxed);
    sink_runs.fetch_add(1);
  });
  for (int i = 0; i < kFeeders; ++i) {
    const auto feeder = graph.add([&] { fed.fetch_add(1, std::memory_order_relaxed); });
    graph.depend(feeder, sink);
  }
  graph.run();
  EXPECT_EQ(sink_runs.load(), 1);
  // The final dependency decrement is acq_rel: the sink sees every feeder.
  EXPECT_EQ(observed_at_sink, kFeeders);
}

TEST(TaskGraph, ReusedGraphReArmsCountersEachRun) {
  ThreadPool pool(2);
  TaskGraph graph(pool);
  std::atomic<int> runs{0};
  const auto a = graph.add([&] { runs.fetch_add(1); });
  const auto b = graph.add([&] { runs.fetch_add(1); });
  graph.depend(a, b);
  for (int rep = 0; rep < 50; ++rep) graph.run();
  EXPECT_EQ(runs.load(), 100);
}

TEST(TaskGraph, ExceptionRetiresWholeGraphAndRethrowsAtJoin) {
  ThreadPool pool(4);
  TaskGraph graph(pool);
  std::atomic<int> ran{0};
  const auto a = graph.add([&] { ran.fetch_add(1); });
  const auto boom = graph.add([&]() -> void {
    ran.fetch_add(1);
    throw std::runtime_error("node failed");
  });
  const auto after = graph.add([&] { ran.fetch_add(1); });
  const auto last = graph.add([&] { ran.fetch_add(1); });
  graph.depend(a, boom);
  graph.depend(boom, after);
  graph.depend(after, last);
  EXPECT_THROW(graph.run(), std::runtime_error);
  // Downstream bodies are skipped once the failure latches, but the join
  // returned — every counter retired, nothing dangles or deadlocks.
  EXPECT_GE(ran.load(), 2);
  // The graph is reusable after a failure (counters and error slot re-arm);
  // the same body throws again.
  EXPECT_THROW(graph.run(), std::runtime_error);
}

TEST(TaskGraph, CycleIsRejectedUpFront) {
  ThreadPool pool(2);
  TaskGraph graph(pool);
  const auto a = graph.add([] {});
  const auto b = graph.add([] {});
  graph.depend(a, b);
  graph.depend(b, a);
  EXPECT_THROW(graph.run(), std::logic_error);
}

TEST(TaskGraph, NestedParallelForInsideNodeStress) {
  ThreadPool pool(4);
  TaskGraph graph(pool);
  constexpr int kNodes = 8;
  constexpr std::int64_t kN = 2048;
  std::vector<std::vector<int>> outputs(kNodes, std::vector<int>(kN, 0));
  std::vector<TaskGraph::NodeId> kernels;
  for (int node = 0; node < kNodes; ++node) {
    auto& out = outputs[std::size_t(node)];
    kernels.push_back(graph.add([&out, &pool] {
      parallel_for(pool, 0, kN, [&out](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) out[std::size_t(i)] += 1;
      });
    }));
  }
  std::atomic<int> joined{0};
  const auto join = graph.add([&] { joined.fetch_add(1); });
  for (const auto kernel : kernels) graph.depend(kernel, join);
  graph.run();
  EXPECT_EQ(joined.load(), 1);
  for (const auto& out : outputs) {
    for (const int v : out) ASSERT_EQ(v, 1);
  }
}

// ---------------------------------------------------------------------------
// parallel_pipeline: token ordering, backpressure, exceptions, determinism.
// ---------------------------------------------------------------------------

TEST(ParallelPipeline, SerialOutStageSeesTicketsInOrder) {
  ThreadPool pool(4);
  constexpr std::size_t kTokens = 500;
  std::vector<std::size_t> committed;
  std::atomic<int> middle_runs{0};
  const std::size_t produced = parallel_pipeline(
      pool, kTokens, 4,
      serial_stage([](std::size_t) {}),
      parallel_stage([&](std::size_t token) {
        // Jitter the middle stage so tokens genuinely race to the exit.
        volatile int spin = int(token % 7) * 50;
        while (spin > 0) spin = spin - 1;
        middle_runs.fetch_add(1, std::memory_order_relaxed);
      }),
      serial_stage([&](std::size_t token) { committed.push_back(token); }));
  EXPECT_EQ(produced, kTokens);
  EXPECT_EQ(middle_runs.load(), int(kTokens));
  ASSERT_EQ(committed.size(), kTokens);
  for (std::size_t i = 0; i < kTokens; ++i) EXPECT_EQ(committed[i], i);
}

TEST(ParallelPipeline, CommitOrderIsDeterministicAcrossRuns) {
  ThreadPool pool(4);
  constexpr std::size_t kTokens = 200;
  std::vector<std::uint64_t> logs[2];
  for (auto& log : logs) {
    std::vector<std::uint64_t> values(kTokens, 0);
    parallel_pipeline(
        pool, kTokens, 6,
        serial_stage([&](std::size_t token) { values[token] = token * 2654435761u; }),
        parallel_stage([&](std::size_t token) { values[token] ^= values[token] >> 13; }),
        serial_stage([&](std::size_t token) { log.push_back(values[token]); }));
  }
  EXPECT_EQ(logs[0], logs[1]);
}

TEST(ParallelPipeline, BoundedTokensApplyBackpressure) {
  ThreadPool pool(4);
  constexpr std::size_t kTokens = 300;
  constexpr std::size_t kInFlight = 3;
  std::atomic<int> in_flight{0};
  std::atomic<int> peak{0};
  const auto track = [&](int delta) {
    const int now = in_flight.fetch_add(delta, std::memory_order_relaxed) + delta;
    int prev = peak.load(std::memory_order_relaxed);
    while (now > prev &&
           !peak.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
    }
  };
  parallel_pipeline(
      pool, kTokens, kInFlight,
      serial_stage([&](std::size_t) { track(+1); }),
      parallel_stage([](std::size_t token) {
        volatile int spin = int(token % 5) * 40;
        while (spin > 0) spin = spin - 1;
      }),
      serial_stage([&](std::size_t) { track(-1); }));
  EXPECT_EQ(in_flight.load(), 0);
  EXPECT_LE(peak.load(), int(kInFlight));
}

TEST(ParallelPipeline, InputStageEndsStreamEarly) {
  ThreadPool pool(4);
  constexpr std::size_t kProduce = 37;
  std::atomic<int> uploaded{0};
  std::vector<std::size_t> committed;
  const std::size_t produced = parallel_pipeline(
      pool, 10'000, 4,
      serial_stage([&](std::size_t token) -> bool { return token < kProduce; }),
      parallel_stage([&](std::size_t) { uploaded.fetch_add(1, std::memory_order_relaxed); }),
      serial_stage([&](std::size_t token) { committed.push_back(token); }));
  EXPECT_EQ(produced, kProduce);
  EXPECT_EQ(uploaded.load(), int(kProduce));
  ASSERT_EQ(committed.size(), kProduce);
  for (std::size_t i = 0; i < kProduce; ++i) EXPECT_EQ(committed[i], i);
}

TEST(ParallelPipeline, MidStageExceptionPropagatesAfterQuiescing) {
  ThreadPool pool(4);
  constexpr std::size_t kTokens = 100;
  std::atomic<int> committed{0};
  bool threw = false;
  try {
    parallel_pipeline(
        pool, kTokens, 4,
        serial_stage([](std::size_t) {}),
        parallel_stage([](std::size_t token) {
          if (token == 13) throw std::runtime_error("upload failed");
        }),
        serial_stage([&](std::size_t) { committed.fetch_add(1); }));
  } catch (const std::runtime_error& error) {
    threw = true;
    EXPECT_STREQ(error.what(), "upload failed");
  }
  EXPECT_TRUE(threw);
  // Tokens before the failure may have committed; everything after is
  // skipped — but the join returned, so the stream fully quiesced.
  EXPECT_LE(committed.load(), int(kTokens));
}

TEST(ParallelPipeline, NestedParallelForInsidePipelineStage) {
  ThreadPool pool(4);
  constexpr std::size_t kTokens = 24;
  constexpr std::int64_t kN = 512;
  std::vector<std::int64_t> sums(kTokens, 0);
  parallel_pipeline(
      pool, kTokens, 4,
      serial_stage([](std::size_t) {}),
      parallel_stage([&](std::size_t token) {
        std::atomic<std::int64_t> sum{0};
        parallel_for(pool, 0, kN, [&](std::int64_t lo, std::int64_t hi) {
          std::int64_t local = 0;
          for (std::int64_t i = lo; i < hi; ++i) local += i;
          sum.fetch_add(local, std::memory_order_relaxed);
        });
        sums[token] = sum.load();
      }),
      serial_stage([](std::size_t) {}));
  for (const std::int64_t sum : sums) EXPECT_EQ(sum, kN * (kN - 1) / 2);
}

}  // namespace
}  // namespace jsceres::rivertrail
