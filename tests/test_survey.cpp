#include <gtest/gtest.h>

#include "survey/aggregate.h"
#include "survey/coding.h"
#include "survey/model.h"

namespace jsceres::survey {
namespace {

const Dataset& dataset() {
  static const Dataset d = Dataset::paper_reconstruction();
  return d;
}

TEST(Dataset, Has174Respondents) { EXPECT_EQ(dataset().size(), 174u); }

TEST(Dataset, IsDeterministic) {
  const Dataset a = Dataset::paper_reconstruction(2015);
  const Dataset b = Dataset::paper_reconstruction(2015);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.respondents()[i].trends_answer, b.respondents()[i].trends_answer);
    EXPECT_EQ(a.respondents()[i].style_preference,
              b.respondents()[i].style_preference);
  }
}

TEST(Dataset, TrendsAnswerBuckets) {
  int no_answer = 0;
  for (const auto& r : dataset().respondents()) {
    if (r.trends_answer.empty()) ++no_answer;
  }
  EXPECT_EQ(no_answer, 45);  // paper: 45 "no answer / no valid data"
}

// ---------------------------------------------------------------------------
// Figure 1: thematic coding
// ---------------------------------------------------------------------------

TEST(Fig1, ReproducesPaperCounts) {
  const Fig1Data data = fig1_categories(dataset(), Coder::rater_a());
  EXPECT_EQ(data.counts[std::size_t(int(Category::Games))], 26);
  EXPECT_EQ(data.counts[std::size_t(int(Category::PeerToPeerSocial))], 17);
  EXPECT_EQ(data.counts[std::size_t(int(Category::DesktopLike))], 15);
  EXPECT_EQ(data.counts[std::size_t(int(Category::DataProcessing))], 7);
  EXPECT_EQ(data.counts[std::size_t(int(Category::AudioVideo))], 8);
  EXPECT_EQ(data.counts[std::size_t(int(Category::Visualization))], 7);
  EXPECT_EQ(data.counts[std::size_t(int(Category::AugmentedRealityRecognition))], 5);
  EXPECT_EQ(data.no_answer, 45);
}

TEST(Fig1, SharesMatchPaperPercentages) {
  const Fig1Data data = fig1_categories(dataset(), Coder::rater_a());
  EXPECT_NEAR(data.share(Category::Games), 0.31, 0.01);
  EXPECT_NEAR(data.share(Category::PeerToPeerSocial), 0.20, 0.01);
  EXPECT_NEAR(data.share(Category::AugmentedRealityRecognition), 0.06, 0.01);
}

TEST(Coding, RatersAgreeAboveEightyPercent) {
  const double agreement =
      inter_rater_agreement(dataset(), Coder::rater_a(), Coder::rater_b(), 0.2);
  EXPECT_GT(agreement, 0.8);  // the paper's codebook-validation threshold
}

TEST(Coding, JaccardProperties) {
  const std::set<Category> a = {Category::Games, Category::AudioVideo};
  const std::set<Category> b = {Category::Games};
  EXPECT_DOUBLE_EQ(jaccard(a, a), 1.0);
  EXPECT_DOUBLE_EQ(jaccard(a, b), 0.5);
  EXPECT_DOUBLE_EQ(jaccard({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(jaccard(a, {}), 0.0);
  EXPECT_DOUBLE_EQ(jaccard(a, b), jaccard(b, a));
}

TEST(Coding, CoderFindsGameAnswers) {
  const Coder coder = Coder::rater_a();
  const auto codes = coder.code("webgl games with realistic physics and game ai");
  EXPECT_EQ(codes.count(Category::Games), 1u);
}

TEST(Coding, CoderIgnoresUncategorizableText) {
  const Coder coder = Coder::rater_a();
  EXPECT_TRUE(coder.code("better tooling for developers themselves").empty());
}

TEST(Coding, WholeWordMatchingOnly) {
  const Coder coder = Coder::rater_a();
  // "gameshow" must not match the keyword "game".
  EXPECT_TRUE(coder.code("a gameshow tv format").empty());
}

// ---------------------------------------------------------------------------
// Figure 2
// ---------------------------------------------------------------------------

TEST(Fig2, ReproducesPaperMatrix) {
  const Fig2Data data = fig2_bottlenecks(dataset());
  // component -> {not an issue, so-so, bottleneck}, from the paper's table.
  const int expected[kComponentCount][3] = {
      {13, 64, 85}, {23, 65, 83}, {37, 72, 46},
      {37, 72, 41}, {65, 65, 35}, {62, 77, 25},
  };
  for (int c = 0; c < kComponentCount; ++c) {
    for (int level = 0; level < 3; ++level) {
      EXPECT_EQ(data.counts[std::size_t(c)][std::size_t(level)], expected[c][level])
          << component_label(Component(c)) << " level " << level;
    }
  }
}

TEST(Fig2, KeyPercentages) {
  const Fig2Data data = fig2_bottlenecks(dataset());
  EXPECT_NEAR(data.share(Component::ResourceLoading, Rating::Bottleneck), 0.52, 0.01);
  EXPECT_NEAR(data.share(Component::DomManipulation, Rating::Bottleneck), 0.49, 0.01);
  EXPECT_NEAR(data.share(Component::NumberCrunching, Rating::Bottleneck), 0.21, 0.01);
  EXPECT_NEAR(data.share(Component::StylingCss, Rating::NotAnIssue), 0.38, 0.01);
}

// ---------------------------------------------------------------------------
// Figures 3 and 4
// ---------------------------------------------------------------------------

TEST(Fig3, ReproducesPaperHistogram) {
  const ScaleData data = fig3_style(dataset());
  EXPECT_EQ(data.counts[0], 52);
  EXPECT_EQ(data.counts[1], 50);
  EXPECT_EQ(data.counts[2], 41);
  EXPECT_EQ(data.counts[3], 15);
  EXPECT_EQ(data.counts[4], 8);
  EXPECT_EQ(data.answered(), 166);
  EXPECT_NEAR(data.share(1), 0.31, 0.01);
}

TEST(Fig4, ReproducesPaperHistogram) {
  const ScaleData data = fig4_polymorphism(dataset());
  EXPECT_EQ(data.answered(), 168);
  EXPECT_NEAR(data.share(1), 0.58, 0.01);  // purely monomorphic
  EXPECT_NEAR(data.share(5), 0.01, 0.01);  // heavy polymorphism
}

TEST(Operators, SeventyFourPercentPreferOperators) {
  const OperatorPreference pref = operators_preference(dataset());
  EXPECT_EQ(pref.answered, 160);
  EXPECT_NEAR(pref.share(), 0.74, 0.005);
}

TEST(Globals, NamespaceEmulationDominates) {
  const GlobalsUsage usage = globals_usage(dataset());
  EXPECT_EQ(usage.answered, 105);  // paper: 105 responses
  EXPECT_EQ(usage.namespace_emulation, 33);  // paper: 33 mention namespacing
  EXPECT_EQ(usage.namespace_emulation + usage.inter_script_communication +
                usage.singletons + usage.other,
            usage.answered);
}

// ---------------------------------------------------------------------------
// Renderers
// ---------------------------------------------------------------------------

TEST(Render, Fig1ContainsCategoriesAndCounts) {
  const std::string out = render_fig1(fig1_categories(dataset(), Coder::rater_a()));
  EXPECT_NE(out.find("Games"), std::string::npos);
  EXPECT_NE(out.find("26 (31%)"), std::string::npos);
}

TEST(Render, Fig2ContainsAllComponents) {
  const std::string out = render_fig2(fig2_bottlenecks(dataset()));
  for (int c = 0; c < kComponentCount; ++c) {
    EXPECT_NE(out.find(component_label(Component(c))), std::string::npos);
  }
}

TEST(Render, ScaleChartShowsAnswerCount) {
  const std::string out =
      render_scale(fig3_style(dataset()), "Figure 3", "functional", "imperative");
  EXPECT_NE(out.find("166 respondents answered"), std::string::npos);
}

/// Marginals must survive any seed (the synthesis fills exact counts; only
/// the pairing of attributes is permuted).
class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, MarginalsAreSeedInvariant) {
  const Dataset d = Dataset::paper_reconstruction(GetParam());
  EXPECT_EQ(fig3_style(d).counts[0], 52);
  EXPECT_EQ(fig4_polymorphism(d).answered(), 168);
  EXPECT_EQ(fig1_categories(d, Coder::rater_a()).counts[0], 26);
  EXPECT_EQ(fig2_bottlenecks(d).counts[0][2], 85);
  EXPECT_EQ(operators_preference(d).answered, 160);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Values(1, 7, 42, 2015, 99999));

}  // namespace
}  // namespace jsceres::survey
