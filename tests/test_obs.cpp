// Observability layer: the lock-free metrics registry (multi-threaded
// aggregation, snapshot-during-update races, log2 histogram buckets), the
// Chrome-trace recorder (ring wraparound, schema, thread names), and the
// end-to-end acceptance run — a fuzz-generated session batch through
// AnalysisService must leave scheduler / interpreter / service / governor /
// epoch metrics with plausible non-zero values and task/session/frame spans
// in the trace. This binary runs under the TSan CI job.
//
// Registrations are process-permanent, so every test uses metric names
// unique to itself ("tobs." prefix + test tag). The registry-exhaustion
// test interns thousands of dead names and is therefore DECLARED LAST in
// this file: gtest runs tests in declaration order, and nothing after it
// could intern fresh metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "fuzz/generator.h"
#include "rivertrail/thread_pool.h"
#include "support/obs.h"
#include "support/service.h"

namespace jsceres {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricKind;
using obs::Snapshot;
using obs::SpanScope;
using obs::TraceEvent;
using obs::TraceRecorder;

std::uint64_t snap_value(const std::string& name) {
  return obs::snapshot().value(name);
}

TEST(MetricsRegistry, CounterAggregatesAcrossThreadsIncludingExitedOnes) {
  Counter& counter = Counter::at("tobs.cross_thread");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter.add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  // All writer threads have exited; their shards must still be aggregated.
  EXPECT_EQ(snap_value("tobs.cross_thread"),
            std::uint64_t(kThreads) * kAddsPerThread);

  // Interning the same name again returns the same metric.
  Counter::at("tobs.cross_thread").add(5);
  EXPECT_EQ(snap_value("tobs.cross_thread"),
            std::uint64_t(kThreads) * kAddsPerThread + 5);
}

TEST(MetricsRegistry, GaugeSetAddAndSnapshotKind) {
  Gauge& gauge = Gauge::at("tobs.gauge");
  gauge.set(42);
  gauge.add(-50);
  EXPECT_EQ(gauge.value(), -8);
  const Snapshot snap = obs::snapshot();
  const obs::SnapshotEntry* entry = snap.find("tobs.gauge");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->kind, MetricKind::Gauge);
  EXPECT_EQ(entry->gauge, -8);
}

TEST(MetricsRegistry, HistogramBucketsByBitWidthAndKeepsSum) {
  Histogram& hist = Histogram::at("tobs.hist");
  hist.record(0);    // bit_width 0 -> bucket 0
  hist.record(1);    // bucket 1
  hist.record(5);    // bucket 3
  hist.record(5);    // bucket 3
  hist.record(255);  // bucket 8
  hist.record(~std::uint64_t(0));  // bit_width 64, clamped to last bucket

  const Snapshot snap = obs::snapshot();
  const obs::SnapshotEntry* entry = snap.find("tobs.hist");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->kind, MetricKind::Histogram);
  EXPECT_EQ(entry->hist.count, 6u);
  EXPECT_EQ(entry->hist.buckets[0], 1u);
  EXPECT_EQ(entry->hist.buckets[1], 1u);
  EXPECT_EQ(entry->hist.buckets[3], 2u);
  EXPECT_EQ(entry->hist.buckets[8], 1u);
  EXPECT_EQ(entry->hist.buckets[obs::kHistogramBuckets - 1], 1u);
  EXPECT_EQ(entry->hist.sum, 0u + 1 + 5 + 5 + 255 + ~std::uint64_t(0));
  EXPECT_GT(entry->hist.mean(), 0.0);
}

TEST(MetricsRegistry, SnapshotDuringConcurrentUpdatesIsMonotonic) {
  Counter& counter = Counter::at("tobs.race");
  constexpr int kWriters = 4;
  constexpr int kAddsPerWriter = 50'000;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kAddsPerWriter; ++i) counter.add(1);
    });
  }
  go.store(true, std::memory_order_release);
  // Snapshots taken mid-update must never go backwards and never overshoot.
  std::uint64_t last = 0;
  for (int probe = 0; probe < 200; ++probe) {
    const std::uint64_t now = snap_value("tobs.race");
    EXPECT_GE(now, last);
    EXPECT_LE(now, std::uint64_t(kWriters) * kAddsPerWriter);
    last = now;
  }
  for (auto& writer : writers) writer.join();
  EXPECT_EQ(snap_value("tobs.race"), std::uint64_t(kWriters) * kAddsPerWriter);
}

TEST(MetricsRegistry, TextAndJsonDumpsCarryEveryKind) {
  Counter::at("tobs.dump_counter").add(3);
  Gauge::at("tobs.dump_gauge").set(-7);
  Histogram::at("tobs.dump_hist").record(100);

  const Snapshot snap = obs::snapshot();
  const std::string text = snap.to_text();
  EXPECT_NE(text.find("tobs.dump_counter"), std::string::npos);
  EXPECT_NE(text.find("tobs.dump_gauge"), std::string::npos);
  EXPECT_NE(text.find("tobs.dump_hist"), std::string::npos);

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"tobs.dump_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"tobs.dump_gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"tobs.dump_hist\""), std::string::npos);
  // Machine-consumed (diff_bench.py --metrics): braces must balance.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsRegistrations) {
  Counter::at("tobs.reset_me").add(17);
  Gauge::at("tobs.reset_gauge").set(9);
  ASSERT_EQ(snap_value("tobs.reset_me"), 17u);
  obs::reset_all_for_testing();
  const Snapshot snap = obs::snapshot();
  ASSERT_NE(snap.find("tobs.reset_me"), nullptr);
  EXPECT_EQ(snap.value("tobs.reset_me"), 0u);
  EXPECT_EQ(snap.find("tobs.reset_gauge")->gauge, 0);
}

// --- trace recorder --------------------------------------------------------

TEST(TraceRecorderTest, RingWrapsKeepingNewestEvents) {
  TraceRecorder& rec = TraceRecorder::instance();
  rec.start(/*events_per_thread=*/16);
  for (std::uint64_t i = 0; i < 100; ++i) {
    TraceEvent event;
    event.name = "wrap";
    event.cat = "tobs";
    event.ts_ns = std::int64_t(i);
    event.dur_ns = 1;
    event.arg_name = "i";
    event.arg = i;
    rec.append(event);
  }
  rec.stop();
  std::vector<TraceEvent> kept;
  for (const TraceEvent& event : rec.collect()) {
    if (std::strcmp(event.cat, "tobs") == 0) kept.push_back(event);
  }
  ASSERT_EQ(kept.size(), 16u);
  // Newest 16 of the 100, in ts order (collect() sorts by ts).
  for (std::size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i].arg, 84 + i);
  }
}

TEST(TraceRecorderTest, SpanScopeRecordsCompleteEventsWithThreadTimes) {
  TraceRecorder& rec = TraceRecorder::instance();
  rec.start(64);
  {
    SpanScope span("tobs", "outer_span", "answer", 42);
    // Enough work that dur/tdur are visibly nonzero on any clock.
    volatile std::uint64_t spin = 0;
    for (int i = 0; i < 200'000; ++i) spin = spin + std::uint64_t(i);
  }
  rec.stop();
  const TraceEvent* found = nullptr;
  const std::vector<TraceEvent> events = rec.collect();
  for (const TraceEvent& event : events) {
    if (std::strcmp(event.name, "outer_span") == 0) found = &event;
  }
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->ph, 'X');
  EXPECT_STREQ(found->cat, "tobs");
  EXPECT_GT(found->dur_ns, 0);
  EXPECT_GE(found->ts_ns, 0);
  ASSERT_NE(found->arg_name, nullptr);
  EXPECT_STREQ(found->arg_name, "answer");
  EXPECT_EQ(found->arg, 42u);
  EXPECT_GT(found->tid, 0u);
}

TEST(TraceRecorderTest, DisarmedRecorderDropsSpansAndInstants) {
  TraceRecorder& rec = TraceRecorder::instance();
  rec.start(64);
  rec.stop();
  {
    SpanScope span("tobs", "dropped_span");
  }
  rec.instant("tobs", "dropped_instant");
  for (const TraceEvent& event : rec.collect()) {
    EXPECT_STRNE(event.name, "dropped_span");
    EXPECT_STRNE(event.name, "dropped_instant");
  }
}

TEST(TraceRecorderTest, ChromeTraceJsonSchemaAndFileRoundTrip) {
  TraceRecorder& rec = TraceRecorder::instance();
  rec.start(64);
  rec.set_thread_name("tobs-main");
  {
    SpanScope span("tobs", "schema_span");
  }
  rec.instant("tobs", "schema_instant");
  rec.stop();

  const std::string json = rec.to_json();
  // Chrome trace-event JSON object format, complete ('X'), instant ('i'
  // with scope), and thread-name metadata ('M') events.
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("tobs-main"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);

  const std::string path = ::testing::TempDir() + "tobs_trace.json";
  ASSERT_TRUE(rec.write_chrome_trace(path));
  FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string read_back;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    read_back.append(buffer, n);
  }
  std::fclose(file);
  EXPECT_EQ(read_back, json);
  EXPECT_FALSE(rec.write_chrome_trace("/nonexistent-dir/trace.json"));
}

TEST(TraceRecorderTest, ConcurrentAppendersEachGetTheirOwnRing) {
  TraceRecorder& rec = TraceRecorder::instance();
  rec.start(1024);
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec] {
      rec.set_thread_name("tobs-worker");
      for (int i = 0; i < kSpansPerThread; ++i) {
        SpanScope span("tobs_mt", "mt_span");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  rec.stop();

  std::size_t spans = 0;
  std::vector<std::uint32_t> tids;
  for (const TraceEvent& event : rec.collect()) {
    if (std::strcmp(event.cat, "tobs_mt") != 0 || event.ph != 'X') continue;
    ++spans;
    if (std::find(tids.begin(), tids.end(), event.tid) == tids.end()) {
      tids.push_back(event.tid);
    }
  }
  EXPECT_EQ(spans, std::size_t(kThreads) * kSpansPerThread);
  EXPECT_EQ(tids.size(), std::size_t(kThreads));
}

// --- acceptance: a service batch populates the whole registry --------------

// Drives fuzz-generated sessions through AnalysisService exactly as
// `fuzz_driver --soak` does (timer sessions through the pipelined frame
// graph) and asserts the snapshot the soak's --metrics-out flag would dump:
// scheduler, interpreter, service, governor, and epoch metrics all live and
// plausible, and the trace carrying per-worker task spans plus per-frame
// stage spans.
TEST(ObservabilityAcceptance, ServiceBatchPopulatesMetricsAndTrace) {
  obs::reset_all_for_testing();
  TraceRecorder& rec = TraceRecorder::instance();
  rec.start();
  rec.set_thread_name("tobs-acceptance");

  rivertrail::ThreadPool pool(2);
  ServiceOptions options;
  options.max_active = 4;
  options.max_queue = 32;
  options.reclaim_every = 8;
  Snapshot snap;
  {
    AnalysisService service(pool, options);
    constexpr int kSessions = 48;
    std::deque<ServiceTicket> window;
    for (int i = 0; i < kSessions; ++i) {
      fuzz::GenOptions gen;
      gen.use_timers = i % 4 == 3;
      ServiceRequest request;
      request.tenant = "tobs-tenant-" + std::to_string(i % 4);
      request.memory_estimate = 4u << 20;
      request.session.name = "tobs-seed-" + std::to_string(i);
      request.session.source = fuzz::generate_program(1000 + i, gen);
      request.session.limits.max_memory_bytes = 4u << 20;
      request.session.max_ticks = 2'000'000;
      request.session.has_timers = gen.use_timers;
      request.session.horizon_ms = 200;
      if (gen.use_timers) request.session.frame_pool = &pool;
      window.push_back(service.submit(std::move(request)));
      while (window.size() > 8) {
        window.front().wait();
        window.pop_front();
      }
    }
    while (!window.empty()) {
      window.front().wait();
      window.pop_front();
    }
    service.drain();
    snap = service.metrics_snapshot();
  }
  rec.stop();

#if JSCERES_OBS
  // Engine probes are compiled in: every layer must have reported.
  // Scheduler: the frame-graph pipeline ran tasks on the pool.
  EXPECT_GT(snap.value("sched.tasks_own") + snap.value("sched.tasks_stolen"),
            0u);
  // Interpreter: inline caches hit far more than they miss.
  EXPECT_GT(snap.value("interp.ic_read_hits"), 0u);
  EXPECT_GT(snap.value("interp.ic_read_hits"),
            snap.value("interp.ic_read_misses"));
  // Service / supervisor plane.
  EXPECT_EQ(snap.value("service.completed"), 48u);
  EXPECT_EQ(snap.value("supervisor.sessions"), 48u);
  EXPECT_EQ(snap.value("governor.admit"), 48u);
  // Epoch reclamation ran (reclaim_every=8 across 48 sessions + drain).
  EXPECT_GT(snap.value("epoch.reclaim_passes"), 0u);
  // Frames committed through the pipelined frame graph (12 timer sessions).
  EXPECT_GT(snap.value("frame.committed"), 0u);
  // Engine gauges refreshed by metrics_snapshot().
  const obs::SnapshotEntry* shapes = snap.find("interp.shape_count");
  ASSERT_NE(shapes, nullptr);
  EXPECT_GT(shapes->gauge, 0);
  // Per-session latency histogram has one sample per session.
  const obs::SnapshotEntry* latency = snap.find("service.session_ms");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->hist.count, 48u);

  // The trace: per-worker task spans and per-frame stage spans.
  std::size_t task_spans = 0;
  std::size_t session_spans = 0;
  std::size_t kernel_spans = 0;
  std::size_t upload_spans = 0;
  std::size_t commit_spans = 0;
  std::vector<std::uint32_t> task_tids;
  for (const TraceEvent& event : rec.collect()) {
    if (event.ph != 'X') continue;
    if (std::strcmp(event.name, "task") == 0) {
      ++task_spans;
      if (std::find(task_tids.begin(), task_tids.end(), event.tid) ==
          task_tids.end()) {
        task_tids.push_back(event.tid);
      }
    } else if (std::strcmp(event.name, "session") == 0) {
      ++session_spans;
    } else if (std::strcmp(event.name, "frame.kernel") == 0) {
      ++kernel_spans;
    } else if (std::strcmp(event.name, "frame.upload") == 0) {
      ++upload_spans;
    } else if (std::strcmp(event.name, "frame.commit") == 0) {
      ++commit_spans;
    }
  }
  EXPECT_GT(task_spans, 0u);
  EXPECT_GE(task_tids.size(), 2u);  // per-worker: both pool workers ran tasks
  EXPECT_EQ(session_spans, 48u);
  EXPECT_GT(kernel_spans, 0u);
  EXPECT_GT(upload_spans, 0u);
  EXPECT_GT(commit_spans, 0u);
  EXPECT_EQ(kernel_spans, commit_spans);  // every committed frame ran a kernel
#else
  // Probes compiled out: the batch must still run to completion, and the
  // registry/recorder must stay empty of engine metrics.
  EXPECT_EQ(snap.value("service.completed"), 0u);
  EXPECT_EQ(rec.collect().size(), 0u);
#endif
}

// --- registry exhaustion (MUST STAY LAST: interns ~4k dead names) ----------

// Exhausting the per-shard cell space must degrade, not crash: late
// registrations alias the overflow counter, and asking for a gauge or
// histogram under a counter's name (or after exhaustion) returns a
// same-kind sink instead of indexing the wrong deque.
TEST(MetricsRegistryExhaustion, OverflowAliasesAndCrossKindLookupsAreSafe) {
  // A name interned as a counter, then requested as every other kind:
  // writes must land in a dead end, not corrupt the counter.
  Counter::at("tobs.kindclash").add(2);
  Gauge::at("tobs.kindclash").set(99);
  Histogram::at("tobs.kindclash").record(7);
  EXPECT_EQ(snap_value("tobs.kindclash"), 2u);
  EXPECT_EQ(obs::snapshot().find("tobs.kindclash")->kind, MetricKind::Counter);

  // Exhaust the cell space (kMaxCells / kHistogramBuckets+1 histograms).
  for (int i = 0; i < 200; ++i) {
    Histogram::at("tobs.exhaust." + std::to_string(i)).record(1);
  }
  // Past exhaustion every kind still returns a usable metric.
  Counter& late_counter = Counter::at("tobs.late_counter");
  late_counter.add(1);
  Gauge& late_gauge = Gauge::at("tobs.late_gauge");
  late_gauge.set(5);
  Histogram& late_hist = Histogram::at("tobs.late_hist");
  late_hist.record(123);
  // The overflow counter recorded the pressure.
  EXPECT_GT(snap_value("obs.registry_overflow"), 0u);
  // And snapshotting the exhausted registry is still well-formed.
  const std::string json = obs::snapshot().to_json();
  EXPECT_NE(json.find("obs.registry_overflow"), std::string::npos);
}

}  // namespace
}  // namespace jsceres
