// Tests for the differential fuzzing harness (fuzz/): the generator only
// emits valid, terminating programs; the oracle battery holds on a seed
// sweep (a miniature of the CI smoke run); the hostile suite recovers; and
// the minimizer actually shrinks failing cases.
#include <gtest/gtest.h>

#include <string>

#include "fuzz/generator.h"
#include "fuzz/oracles.h"
#include "fuzz/triage.h"
#include "interp/interpreter.h"
#include "js/parser.h"
#include "support/clock.h"

namespace jsceres::fuzz {
namespace {

TEST(Generator, ProgramsParseAndTerminate) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const std::string source = generate_program(seed);
    js::Program program;
    ASSERT_NO_THROW(program = js::parse(source, "<gen>"))
        << "seed " << seed << " generated invalid source:\n"
        << source;
    VirtualClock clock;
    interp::InterpreterConfig config;
    config.max_ticks = 10'000'000;  // a terminating program never gets close
    interp::Interpreter interp(program, clock, nullptr, config);
    ASSERT_NO_THROW(interp.run()) << "seed " << seed << " failed to run";
    EXPECT_NE(interp.console_output().find("CK:"), std::string::npos)
        << "seed " << seed << " never logged its checksum";
  }
}

TEST(Generator, TimerProgramsParse) {
  GenOptions options;
  options.use_timers = true;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const std::string source = generate_program(seed, options);
    EXPECT_NO_THROW(js::parse(source, "<gen>")) << source;
    EXPECT_NE(source.find("requestAnimationFrame"), std::string::npos);
    EXPECT_NE(source.find("setTimeout"), std::string::npos);
  }
}

TEST(Generator, DeterministicForAFixedSeed) {
  EXPECT_EQ(generate_program(42), generate_program(42));
  EXPECT_NE(generate_program(42), generate_program(43));
}

TEST(Oracles, HoldOnASeedSweep) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const OracleOutcome outcome = check_program(generate_program(seed));
    EXPECT_TRUE(outcome.ok) << "seed " << seed << " failed oracle "
                            << outcome.oracle << ": " << outcome.detail;
  }
}

TEST(Oracles, HoldOnTimerPrograms) {
  GenOptions options;
  options.use_timers = true;
  OracleOptions oracle_options;
  oracle_options.has_timers = true;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const OracleOutcome outcome =
        check_program(generate_program(seed, options), oracle_options);
    EXPECT_TRUE(outcome.ok) << "seed " << seed << " failed oracle "
                            << outcome.oracle << ": " << outcome.detail;
  }
}

TEST(Oracles, FlagInvalidSourceAsGeneratorDefect) {
  const OracleOutcome outcome = check_program("var = ;");
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.oracle, "generator-validity");
}

TEST(HostileSuite, EveryCaseRecovers) {
  const auto cases = hostile_suite();
  ASSERT_GE(cases.size(), 5u);
  for (const HostileCase& hostile : cases) {
    const HostileReport report = run_hostile_case(hostile);
    EXPECT_TRUE(report.recovered)
        << hostile.name << " did not recover: " << report.error;
    EXPECT_FALSE(report.error.empty()) << hostile.name;
  }
}

TEST(Triage, MinimizerShrinksToTheFailingLine) {
  // Synthetic failure: "fails" iff the marker line is present.
  const std::string source =
      "var a = 1;\nvar b = 2;\nMARKER();\nvar c = 3;\nvar d = 4;\n";
  const std::string minimized = minimize_lines(source, [](const std::string& s) {
    return s.find("MARKER") != std::string::npos;
  });
  EXPECT_EQ(minimized, "MARKER();\n");
}

TEST(Triage, MinimizerKeepsStructurallyRequiredLines) {
  // Dropping the loop header alone un-parses the body, so a parse-checking
  // predicate retains structure while still dropping independent lines.
  const std::string source =
      "var keep = 1;\n"
      "var noise = 2;\n"
      "for (var i = 0; i < 3; i++) {\n"
      "  keep = keep + 1;\n"
      "}\n";
  const auto fails = [](const std::string& s) {
    try {
      js::parse(s);
    } catch (...) {
      return false;  // candidates must stay parseable
    }
    return s.find("keep = keep + 1") != std::string::npos;
  };
  const std::string minimized = minimize_lines(source, fails);
  EXPECT_NE(minimized.find("keep = keep + 1"), std::string::npos);
  EXPECT_EQ(minimized.find("noise"), std::string::npos);
  EXPECT_NO_THROW(js::parse(minimized));
}

}  // namespace
}  // namespace jsceres::fuzz
