#include <gtest/gtest.h>

#include "ceres/char_stack.h"
#include "ceres/dependence_analyzer.h"
#include "ceres/lightweight_profiler.h"
#include "ceres/loop_profiler.h"
#include "ceres/sampling_profiler.h"
#include "interp/interpreter.h"
#include "js/parser.h"

namespace jsceres::ceres {
namespace {

using interp::Interpreter;

// ---------------------------------------------------------------------------
// Characterization algebra
// ---------------------------------------------------------------------------

TEST(CharStack, CreationSameIterationIsPrivate) {
  const Stamp stamp = {{1, 0, 3}};
  const Stamp current = {{1, 0, 3}};
  const auto chr = characterize_creation(stamp, current);
  EXPECT_FALSE(chr.problematic());
}

TEST(CharStack, CreationEarlierIterationIsIterationDep) {
  const Stamp stamp = {{1, 0, 2}};
  const Stamp current = {{1, 0, 5}};
  const auto chr = characterize_creation(stamp, current);
  ASSERT_EQ(chr.levels.size(), 1u);
  EXPECT_FALSE(chr.levels[0].instance_dep);
  EXPECT_TRUE(chr.levels[0].iteration_dep);
}

TEST(CharStack, CreationBeforeLoopSharesIterationsNotInstances) {
  // The paper's `var p` case: env created under [while#k iter m], accessed
  // under [while#k iter m, for#j iter n].
  const Stamp stamp = {{1, 4, 2}};
  const Stamp current = {{1, 4, 2}, {2, 9, 5}};
  const auto chr = characterize_creation(stamp, current);
  ASSERT_EQ(chr.levels.size(), 2u);
  EXPECT_FALSE(chr.levels[0].instance_dep);
  EXPECT_FALSE(chr.levels[0].iteration_dep);  // while: ok ok
  EXPECT_FALSE(chr.levels[1].instance_dep);
  EXPECT_TRUE(chr.levels[1].iteration_dep);  // for: ok dependence
}

TEST(CharStack, GlobalDataIsFullySharedPastFirstDivergence) {
  // Created outside all loops, accessed under two nested loops: the outer
  // level reads "ok dependence" and everything deeper is fully shared.
  const Stamp stamp = {};
  const Stamp current = {{1, 0, 2}, {2, 5, 1}};
  const auto chr = characterize_creation(stamp, current);
  EXPECT_FALSE(chr.levels[0].instance_dep);
  EXPECT_TRUE(chr.levels[0].iteration_dep);
  EXPECT_TRUE(chr.levels[1].instance_dep);
  EXPECT_TRUE(chr.levels[1].iteration_dep);
}

TEST(CharStack, DifferentInstanceIsInstanceDep) {
  const Stamp stamp = {{1, 3, 1}};
  const Stamp current = {{1, 4, 1}};
  const auto chr = characterize_creation(stamp, current);
  EXPECT_TRUE(chr.levels[0].instance_dep);
  EXPECT_TRUE(chr.levels[0].iteration_dep);
}

TEST(CharStack, FlowAcrossIterations) {
  const Stamp write = {{1, 0, 4}};
  const Stamp read = {{1, 0, 5}};
  const auto chr = characterize_flow(write, read);
  EXPECT_FALSE(chr.levels[0].instance_dep);
  EXPECT_TRUE(chr.levels[0].iteration_dep);
}

TEST(CharStack, FlowSameIterationIsFine) {
  const Stamp write = {{1, 0, 5}};
  const Stamp read = {{1, 0, 5}};
  EXPECT_FALSE(characterize_flow(write, read).problematic());
}

TEST(CharStack, WriteBeforeLoopIsNotFlow) {
  // Loop-invariant input: written outside the loop, read inside.
  const Stamp write = {};
  const Stamp read = {{1, 0, 3}};
  EXPECT_FALSE(characterize_flow(write, read).problematic());
}

TEST(CharStack, RecursionDetected) {
  CharStack stack;
  stack.on_enter(1);
  stack.on_iteration(1);
  stack.on_enter(1);  // re-entered while open: recursion
  EXPECT_EQ(stack.recursive_loops().size(), 1u);
}

TEST(CharStack, InstanceCounterIncrementsPerEntry) {
  CharStack stack;
  stack.on_enter(1);
  stack.on_exit(1);
  stack.on_enter(1);
  EXPECT_EQ(stack.current().back().instance, 1);
}

// ---------------------------------------------------------------------------
// Mode 1: lightweight profiling
// ---------------------------------------------------------------------------

TEST(LightweightProfiler, MeasuresLoopShare) {
  js::Program program = js::parse(
      "var s = 0;\n"
      "for (var i = 0; i < 5000; i++) { s += i; }\n"
      "var t = 0;\n");
  VirtualClock clock;
  LightweightProfiler prof(clock);
  Interpreter interp(program, clock, &prof);
  interp.run();
  EXPECT_GT(prof.in_loops_ns(), 0);
  EXPECT_LE(prof.in_loops_ns(), clock.wall_ns());
  // Nearly all of this program is the loop.
  EXPECT_GT(double(prof.in_loops_ns()) / double(clock.wall_ns()), 0.9);
}

TEST(LightweightProfiler, NestedLoopsCountedOnce) {
  js::Program program = js::parse(
      "var s = 0;\n"
      "for (var i = 0; i < 40; i++) { for (var j = 0; j < 40; j++) { s++; } }\n");
  VirtualClock clock;
  LightweightProfiler prof(clock);
  Interpreter interp(program, clock, &prof);
  interp.run();
  EXPECT_LE(prof.in_loops_ns(), clock.wall_ns());
  EXPECT_EQ(prof.open_loops(), 0);
}

// ---------------------------------------------------------------------------
// Mode 2: loop profiling
// ---------------------------------------------------------------------------

TEST(LoopProfiler, TripCountStatistics) {
  js::Program program = js::parse(
      "function work(n) { var s = 0; for (var i = 0; i < n; i++) { s += i; } return s; }\n"
      "work(10); work(20); work(30);\n");
  VirtualClock clock;
  LoopProfiler prof(clock);
  Interpreter interp(program, clock, &prof);
  interp.run();
  const LoopStats* stats = prof.stats_for(1);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->instances, 3);
  EXPECT_DOUBLE_EQ(stats->trips.mean(), 20.0);
  EXPECT_NEAR(stats->trips.stddev(), 8.1649, 1e-3);
  EXPECT_GT(stats->runtime_ns.total(), 0);
}

TEST(LoopProfiler, NestingEdgesFollowRuntime) {
  js::Program program = js::parse(
      "function inner() { for (var j = 0; j < 2; j++) { } }\n"
      "for (var i = 0; i < 3; i++) { inner(); }\n");
  VirtualClock clock;
  LoopProfiler prof(clock);
  Interpreter interp(program, clock, &prof);
  interp.run();
  // Loop 1 is inner's for (parsed first), loop 2 the top-level for.
  const auto& edges = prof.nesting_edges();
  const auto it = edges.find({1, 2});
  ASSERT_NE(it, edges.end());
  EXPECT_EQ(it->second, 3);
}

TEST(LoopProfiler, OuterLoopTimeIncludesInner) {
  js::Program program = js::parse(
      "for (var i = 0; i < 5; i++) { for (var j = 0; j < 100; j++) { } }\n");
  VirtualClock clock;
  LoopProfiler prof(clock);
  Interpreter interp(program, clock, &prof);
  interp.run();
  // Outer loop is id 1, inner id 2.
  EXPECT_GT(prof.stats_for(1)->total_runtime_ns(),
            prof.stats_for(2)->total_runtime_ns() * 0.9);
  EXPECT_EQ(prof.stats_for(2)->instances, 5);
}

TEST(LoopProfiler, TotalInLoopsMatchesLightweight) {
  const std::string source =
      "var s = 0;\n"
      "for (var i = 0; i < 500; i++) { s += i; }\n"
      "for (var j = 0; j < 500; j++) { s -= j; }\n";
  js::Program p1 = js::parse(source);
  VirtualClock c1;
  LightweightProfiler light(c1);
  Interpreter i1(p1, c1, &light);
  i1.run();

  js::Program p2 = js::parse(source);
  VirtualClock c2;
  LoopProfiler loops(c2);
  Interpreter i2(p2, c2, &loops);
  i2.run();

  EXPECT_EQ(light.in_loops_ns(), loops.total_in_loops_ns());
}

// ---------------------------------------------------------------------------
// Sampling profiler (Gecko emulation)
// ---------------------------------------------------------------------------

TEST(SamplingProfiler, ActiveTimeTracksCpu) {
  js::Program program = js::parse(
      "var s = 0;\n"
      "for (var i = 0; i < 200000; i++) { s += i; }\n");
  VirtualClock clock;
  SamplingProfiler prof(clock);
  Interpreter interp(program, clock, &prof);
  interp.run();
  prof.finish();
  // Pure compute: sampled active time ~== cpu time (within one period).
  EXPECT_NEAR(double(prof.active_ns()), double(clock.cpu_ns()),
              2.0 * 1'000'000);
}

TEST(SamplingProfiler, BlockedTimeIsInactive) {
  js::Program program = js::parse("var x = 1;");
  VirtualClock clock;
  SamplingProfiler prof(clock);
  Interpreter interp(program, clock, &prof);
  interp.run();
  interp.block(50'000'000);  // 50 ms of idle
  prof.finish();
  EXPECT_LT(prof.active_ns(), 2'000'000);
  EXPECT_GE(prof.total_samples(), 50);
}

TEST(SamplingProfiler, FunctionGranularityArtifactUndercounts) {
  const std::string source =
      "function hot() { var s = 0; for (var i = 0; i < 400000; i++) { s += i; } return s; }\n"
      "hot();\n";
  js::Program p1 = js::parse(source);
  VirtualClock c1;
  SamplingProfiler exact(c1);
  Interpreter i1(p1, c1, &exact);
  i1.run();
  exact.finish();

  js::Program p2 = js::parse(source);
  VirtualClock c2;
  SamplingProfiler::Options opts;
  opts.function_granularity_artifact = true;
  opts.max_same_fn_samples = 16;
  SamplingProfiler lossy(c2, opts);
  Interpreter i2(p2, c2, &lossy);
  i2.run();
  lossy.finish();

  // The artifact makes the profiler lose most of a long single-function run
  // — the paper's "active < in-loops" anomaly.
  EXPECT_LT(lossy.active_ns(), exact.active_ns() / 2);
}

// ---------------------------------------------------------------------------
// Mode 3: dependence analysis — the paper's Fig. 6 walkthrough
// ---------------------------------------------------------------------------

/// The N-body step of Fig. 6, adapted to the engine subset. Loop ids:
///   1 = setup for, 2 = for inside step (the focused loop), 3 = driver while.
const char* kNBody = R"JS(
var bodies = [];
var dT = 0.1;
for (var i0 = 0; i0 < 6; i0++) {
  bodies.push({x: i0, y: 0, vX: 0, vY: 0, fX: 1, fY: 1, m: 1});
}
function Particle() { this.x = 0; this.y = 0; this.m = 0; }
function step() {
  var com = new Particle();
  for (var i = 0; i < bodies.length; i++) {
    var p = bodies[i];
    p.vX += p.fX / p.m * dT;
    p.vY += p.fY / p.m * dT;
    p.x += p.vX * dT;
    p.y += p.vY * dT;
    com.m = com.m + p.m;
    com.x = (com.x * (com.m - p.m) + p.x * p.m) / com.m;
    com.y = (com.y * (com.m - p.m) + p.y * p.m) / com.m;
  }
  return com;
}
var steps = 0;
while (steps < 4) {
  var com = step();
  steps = steps + 1;
}
)JS";

struct NBodyRun {
  NBodyRun() : program(js::parse(kNBody)) {
    DependenceAnalyzer::Options options;
    options.focus_loop_id = 2;  // the for inside step()
    analyzer = std::make_unique<DependenceAnalyzer>(program, options);
    interp = std::make_unique<Interpreter>(program, clock, analyzer.get());
    interp->run();
  }

  const DependenceWarning* find(AccessKind kind, const std::string& name) const {
    for (const auto& w : analyzer->warnings()) {
      if (w.kind == kind && w.name == name) return &w;
    }
    return nullptr;
  }

  js::Program program;
  VirtualClock clock;
  std::unique_ptr<DependenceAnalyzer> analyzer;
  std::unique_ptr<Interpreter> interp;
};

TEST(DependenceFig6, VarPIsSharedAcrossForIterations) {
  NBodyRun run;
  const auto* warning = run.find(AccessKind::VarWrite, "p");
  ASSERT_NE(warning, nullptr) << run.analyzer->report();
  // Paper: "while(line 24) ok ok -> for(line 6) ok dependence"
  const LevelFlags* at_while = warning->characterization.at_loop(3);
  const LevelFlags* at_for = warning->characterization.at_loop(2);
  ASSERT_NE(at_while, nullptr);
  ASSERT_NE(at_for, nullptr);
  EXPECT_FALSE(at_while->instance_dep);
  EXPECT_FALSE(at_while->iteration_dep);
  EXPECT_FALSE(at_for->instance_dep);
  EXPECT_TRUE(at_for->iteration_dep);
}

TEST(DependenceFig6, WritesToParticleFieldsFlagged) {
  NBodyRun run;
  for (const char* field : {"vX", "vY", "x", "y"}) {
    const auto* warning = run.find(AccessKind::PropWrite, field);
    ASSERT_NE(warning, nullptr) << "missing warning for " << field << "\n"
                                << run.analyzer->report();
    const LevelFlags* at_for = warning->characterization.at_loop(2);
    ASSERT_NE(at_for, nullptr);
    EXPECT_FALSE(at_for->instance_dep) << field;
    EXPECT_TRUE(at_for->iteration_dep) << field;
  }
}

TEST(DependenceFig6, WritesToComFieldsFlagged) {
  NBodyRun run;
  const auto* warning = run.find(AccessKind::PropWrite, "m");
  ASSERT_NE(warning, nullptr) << run.analyzer->report();
  const LevelFlags* at_for = warning->characterization.at_loop(2);
  ASSERT_NE(at_for, nullptr);
  EXPECT_FALSE(at_for->instance_dep);
  EXPECT_TRUE(at_for->iteration_dep);
}

TEST(DependenceFig6, ReadsOfComAreFlowDependencies) {
  NBodyRun run;
  const auto* warning = run.find(AccessKind::PropRead, "m");
  ASSERT_NE(warning, nullptr) << run.analyzer->report();
  EXPECT_EQ(warning->dep, DepClass::Flow);
  const LevelFlags* at_for = warning->characterization.at_loop(2);
  ASSERT_NE(at_for, nullptr);
  EXPECT_TRUE(at_for->iteration_dep);
}

TEST(DependenceFig6, RenderMatchesPaperFormat) {
  NBodyRun run;
  const auto* warning = run.find(AccessKind::VarWrite, "p");
  ASSERT_NE(warning, nullptr);
  const std::string text = warning->render(run.program);
  EXPECT_NE(text.find("write to variable p"), std::string::npos);
  EXPECT_NE(text.find("while(line 23) ok ok -> for(line 10) ok dependence"),
            std::string::npos)
      << text;
}

/// Paper §3.3: extracting the loop body into a function privatizes `p`
/// (fresh activation per iteration); the warning on `com` stands.
TEST(DependenceFig6, ExtractedBodyPrivatizesP) {
  const char* source = R"JS(
var bodies = [];
var dT = 0.1;
for (var i0 = 0; i0 < 6; i0++) {
  bodies.push({x: i0, y: 0, vX: 0, vY: 0, m: 1});
}
function Particle() { this.x = 0; this.m = 0; }
function step() {
  var com = new Particle();
  function body(i) {
    var p = bodies[i];
    p.vX += dT;
    p.x += p.vX * dT;
    com.m = com.m + p.m;
    com.x = (com.x * (com.m - p.m) + p.x * p.m) / com.m;
  }
  for (var i = 0; i < bodies.length; i++) { body(i); }
  return com;
}
var steps = 0;
while (steps < 4) { step(); steps = steps + 1; }
)JS";
  js::Program program = js::parse(source);
  DependenceAnalyzer::Options options;
  options.focus_loop_id = 2;
  DependenceAnalyzer analyzer(program, options);
  VirtualClock clock;
  Interpreter interp(program, clock, &analyzer);
  interp.run();

  for (const auto& w : analyzer.warnings()) {
    EXPECT_FALSE(w.kind == AccessKind::VarWrite && w.name == "p")
        << "p should be private now: " << w.render(program);
    // Writes through p (vX) are private per iteration now.
    EXPECT_FALSE(w.kind == AccessKind::PropWrite && w.name == "vX")
        << w.render(program);
  }
  // The warning on com stands.
  bool com_write = false;
  for (const auto& w : analyzer.warnings()) {
    if (w.kind == AccessKind::PropWrite && w.name == "m") com_write = true;
  }
  EXPECT_TRUE(com_write) << analyzer.report();
}

TEST(Dependence, DisjointIndexWritesAreNotConflicts) {
  // out[i] = 2 * in[i] — the parallel pattern: output array is shared
  // (created outside), but no field is written in two iterations.
  const char* source = R"JS(
var input = [];
for (var i0 = 0; i0 < 32; i0++) { input.push(i0); }
var out = [];
out.length = 32;
for (var i = 0; i < 32; i++) { out[i] = 2 * input[i]; }
)JS";
  js::Program program = js::parse(source);
  DependenceAnalyzer analyzer(program);
  VirtualClock clock;
  Interpreter interp(program, clock, &analyzer);
  interp.run();
  const auto summaries = analyzer.summaries();
  const int fill_loop = program.loop_id_at_line(6);
  ASSERT_NE(fill_loop, 0);
  const auto it = summaries.find(fill_loop);
  ASSERT_NE(it, summaries.end());
  // Writes are flagged shared (the array pre-dates the loop) but no
  // same-field cross-iteration conflict exists.
  EXPECT_GT(it->second.shared_prop_writes, 0);
  EXPECT_EQ(it->second.conflicting_write_sites, 0);
  EXPECT_EQ(it->second.flow_deps, 0);
}

TEST(Dependence, ReductionHasConflictsAndFlow) {
  const char* source = R"JS(
var acc = {sum: 0};
var data = [1, 2, 3, 4, 5, 6, 7, 8];
for (var i = 0; i < data.length; i++) { acc.sum = acc.sum + data[i]; }
)JS";
  js::Program program = js::parse(source);
  DependenceAnalyzer analyzer(program);
  VirtualClock clock;
  Interpreter interp(program, clock, &analyzer);
  interp.run();
  const int loop = program.loop_id_at_line(4);
  const auto summaries = analyzer.summaries();
  const auto it = summaries.find(loop);
  ASSERT_NE(it, summaries.end());
  EXPECT_GT(it->second.flow_deps, 0);
  EXPECT_GT(it->second.conflicting_write_sites, 0);
}

TEST(Dependence, RecursionGuardFires) {
  const char* source = R"JS(
function walk(depth) {
  for (var i = 0; i < 2; i++) {
    if (depth > 0) { walk(depth - 1); }
  }
}
walk(3);
)JS";
  js::Program program = js::parse(source);
  DependenceAnalyzer analyzer(program);
  VirtualClock clock;
  Interpreter interp(program, clock, &analyzer);
  interp.run();
  const auto summaries = analyzer.summaries();
  ASSERT_EQ(summaries.count(1), 1u);
  EXPECT_TRUE(summaries.at(1).recursion_detected);
}

TEST(Dependence, FocusFilterLimitsReports) {
  const char* source = R"JS(
var shared = {n: 0};
for (var a = 0; a < 4; a++) { shared.n = shared.n + 1; }
for (var b = 0; b < 4; b++) { shared.n = shared.n + 1; }
)JS";
  js::Program program = js::parse(source);
  DependenceAnalyzer::Options options;
  options.focus_loop_id = 2;  // second loop only
  DependenceAnalyzer analyzer(program, options);
  VirtualClock clock;
  Interpreter interp(program, clock, &analyzer);
  interp.run();
  for (const auto& w : analyzer.warnings()) {
    const LevelFlags* at_first = w.characterization.at_loop(1);
    EXPECT_EQ(at_first, nullptr) << w.render(program);
  }
  EXPECT_FALSE(analyzer.warnings().empty());
}

TEST(Dependence, WarningsDeduplicateWithCounts) {
  const char* source = R"JS(
var o = {n: 0};
for (var i = 0; i < 50; i++) { o.n = i; }
)JS";
  js::Program program = js::parse(source);
  DependenceAnalyzer analyzer(program);
  VirtualClock clock;
  Interpreter interp(program, clock, &analyzer);
  interp.run();
  std::int64_t n_warnings = 0;
  for (const auto& w : analyzer.warnings()) {
    if (w.kind == AccessKind::PropWrite && w.name == "n") {
      ++n_warnings;
      EXPECT_GT(w.count, 1);
    }
  }
  EXPECT_EQ(n_warnings, 1);
}

}  // namespace
}  // namespace jsceres::ceres
