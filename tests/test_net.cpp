// The network ingress: frame codec round-trips and hostile-byte sweeps,
// loopback end-to-end service over real sockets (multi-tenant, shed and
// quarantine surfaced in response frames), the connection lifecycle
// defenses (slowloris, idle, connection/in-flight/rate caps, auth), the
// graceful drain, and the socket fault-injection sweep. This binary runs
// under the TSan and ASan CI jobs.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/client.h"
#include "net/frame.h"
#include "net/net_faults.h"
#include "net/server.h"
#include "rivertrail/thread_pool.h"
#include "support/service.h"

namespace jsceres {
namespace {

using namespace std::chrono_literals;

std::int64_t mono_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// --- codec -----------------------------------------------------------------

net::WireRequest sample_request() {
  net::WireRequest request;
  request.id = 42;
  request.mode = 1;
  request.has_timers = true;
  request.deadline_ms = 250;
  request.max_ticks = 2'000'000;
  request.memory_estimate = 4u << 20;
  request.max_memory_bytes = 8u << 20;
  request.name = "codec-sample";
  request.source = "console.log('hello \x01 wire');";
  return request;
}

TEST(WireCodec, RequestRoundTrip) {
  const net::WireRequest in = sample_request();
  net::WireRequest out;
  ASSERT_TRUE(net::decode_request(net::encode_request(in), out));
  EXPECT_EQ(out.id, in.id);
  EXPECT_EQ(out.mode, in.mode);
  EXPECT_EQ(out.has_timers, in.has_timers);
  EXPECT_EQ(out.deadline_ms, in.deadline_ms);
  EXPECT_EQ(out.max_ticks, in.max_ticks);
  EXPECT_EQ(out.memory_estimate, in.memory_estimate);
  EXPECT_EQ(out.max_memory_bytes, in.max_memory_bytes);
  EXPECT_EQ(out.name, in.name);
  EXPECT_EQ(out.source, in.source);
}

TEST(WireCodec, ResponseRoundTripCarriesOutcomeAndHistory) {
  ServiceOutcome in;
  in.state = ServiceState::Degraded;
  in.watchdog_quarantined = true;
  in.shed_reason = "";
  in.session.name = "resp-sample";
  in.session.final_mode = 1;
  in.session.attempts = 2;
  in.session.console = "CK:123\n";
  in.session.error = "deadline";
  in.session.cpu_ns = 1'234'567;
  in.session.wall_ns = 7'654'321;
  in.session.peak_bytes = 3u << 20;
  in.session.runtime_fault = false;
  AttemptRecord first;
  first.mode = 3;
  first.outcome = "deadline";
  first.error = "wall deadline exceeded";
  first.cpu_ns = 1000;
  first.wall_ns = 2000;
  first.peak_bytes = 1u << 20;
  in.session.history.push_back(first);
  AttemptRecord second;
  second.mode = 1;
  second.outcome = "ok";
  second.cpu_ns = 500;
  in.session.history.push_back(second);

  std::uint32_t id = 0;
  ServiceOutcome out;
  ASSERT_TRUE(net::decode_response(net::encode_response(77, in), id, out));
  EXPECT_EQ(id, 77u);
  EXPECT_EQ(out.state, in.state);
  EXPECT_TRUE(out.watchdog_quarantined);
  EXPECT_EQ(out.session.final_mode, 1);
  EXPECT_EQ(out.session.attempts, 2);
  EXPECT_EQ(out.session.name, "resp-sample");
  EXPECT_EQ(out.session.console, "CK:123\n");
  EXPECT_EQ(out.session.error, "deadline");
  EXPECT_EQ(out.session.cpu_ns, in.session.cpu_ns);
  EXPECT_EQ(out.session.wall_ns, in.session.wall_ns);
  EXPECT_EQ(out.session.peak_bytes, in.session.peak_bytes);
  ASSERT_EQ(out.session.history.size(), 2u);
  EXPECT_EQ(out.session.history[0].outcome, "deadline");
  EXPECT_EQ(out.session.history[0].error, "wall deadline exceeded");
  EXPECT_EQ(out.session.history[1].mode, 1);
  EXPECT_EQ(out.session.history[1].outcome, "ok");
  // The first five ServiceState values mirror SessionState.
  EXPECT_EQ(out.session.state, SessionState::Degraded);
}

TEST(WireCodec, ShedResponseRoundTripKeepsReason) {
  ServiceOutcome in;
  in.state = ServiceState::Shed;
  in.shed_reason = "queue-full";
  std::uint32_t id = 0;
  ServiceOutcome out;
  ASSERT_TRUE(net::decode_response(net::encode_response(9, in), id, out));
  EXPECT_EQ(out.state, ServiceState::Shed);
  EXPECT_EQ(out.shed_reason, "queue-full");
}

TEST(WireCodec, ErrorRoundTrip) {
  const std::vector<std::uint8_t> payload =
      net::encode_error(13, net::WireError::RateLimited, "slow down");
  net::WireErrorFrame out;
  ASSERT_TRUE(net::decode_error(payload, out));
  EXPECT_EQ(out.id, 13u);
  EXPECT_EQ(out.code, net::WireError::RateLimited);
  EXPECT_EQ(out.message, "slow down");
}

TEST(WireCodec, FrameHeaderRoundTripStripsTokenPadding) {
  net::Frame in;
  in.kind = net::FrameKind::Request;
  in.tenant = "tok-a";
  in.payload = {1, 2, 3, 4, 5};
  const std::vector<std::uint8_t> bytes = net::encode_frame(in);
  EXPECT_EQ(bytes.size(), net::kHeaderBytes + in.payload.size());
  const net::DecodeResult decoded =
      net::decode_frame(bytes.data(), bytes.size(), 1u << 20);
  ASSERT_EQ(decoded.status, net::DecodeStatus::Ok);
  EXPECT_EQ(decoded.frame.kind, net::FrameKind::Request);
  EXPECT_EQ(decoded.frame.tenant, "tok-a");  // NUL padding stripped
  EXPECT_EQ(decoded.frame.payload, in.payload);
  EXPECT_EQ(decoded.consumed, bytes.size());
}

TEST(WireCodec, TruncationSweepEveryPrefixNeedsMoreNeverMisparses) {
  const std::vector<std::uint8_t> bytes =
      net::make_request_frame("tok-alpha", sample_request());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const net::DecodeResult decoded =
        net::decode_frame(bytes.data(), len, 1u << 20);
    EXPECT_EQ(decoded.status, net::DecodeStatus::NeedMore)
        << "prefix of " << len << " bytes";
  }
  EXPECT_EQ(net::decode_frame(bytes.data(), bytes.size(), 1u << 20).status,
            net::DecodeStatus::Ok);
  // Two frames back to back: the decoder consumes exactly one.
  std::vector<std::uint8_t> twice = bytes;
  twice.insert(twice.end(), bytes.begin(), bytes.end());
  const net::DecodeResult one =
      net::decode_frame(twice.data(), twice.size(), 1u << 20);
  ASSERT_EQ(one.status, net::DecodeStatus::Ok);
  EXPECT_EQ(one.consumed, bytes.size());
}

TEST(WireCodec, GarbageAndHeaderViolationsAreTypedBad) {
  // Garbage magic fails from the very first wrong byte — no waiting for a
  // full header.
  const std::uint8_t http[] = {'G', 'E', 'T', ' '};
  net::DecodeResult decoded = net::decode_frame(http, 1, 1u << 20);
  EXPECT_EQ(decoded.status, net::DecodeStatus::Bad);
  EXPECT_EQ(decoded.error, net::WireError::BadMagic);

  std::vector<std::uint8_t> frame =
      net::make_request_frame("t", sample_request());

  std::vector<std::uint8_t> bad_version = frame;
  bad_version[4] = 9;
  decoded = net::decode_frame(bad_version.data(), bad_version.size(), 1u << 20);
  EXPECT_EQ(decoded.status, net::DecodeStatus::Bad);
  EXPECT_EQ(decoded.error, net::WireError::BadVersion);

  std::vector<std::uint8_t> bad_kind = frame;
  bad_kind[5] = 7;
  decoded = net::decode_frame(bad_kind.data(), bad_kind.size(), 1u << 20);
  EXPECT_EQ(decoded.status, net::DecodeStatus::Bad);
  EXPECT_EQ(decoded.error, net::WireError::BadKind);

  // Oversized announced length is refused from the header alone; the
  // payload bytes need not exist.
  std::vector<std::uint8_t> huge(frame.begin(),
                                 frame.begin() + net::kHeaderBytes);
  huge[24] = 0xff;
  huge[25] = 0xff;
  huge[26] = 0xff;
  huge[27] = 0x7f;
  decoded = net::decode_frame(huge.data(), huge.size(), 1u << 20);
  EXPECT_EQ(decoded.status, net::DecodeStatus::Bad);
  EXPECT_EQ(decoded.error, net::WireError::FrameTooLarge);
}

TEST(WireCodec, PayloadDecodersRejectTruncationAndTrailingBytes) {
  // Every strict prefix of each payload must fail to decode — never crash,
  // never misparse — and trailing bytes are a violation too.
  const std::vector<std::uint8_t> request = net::encode_request(sample_request());
  for (std::size_t len = 0; len < request.size(); ++len) {
    net::WireRequest out;
    EXPECT_FALSE(net::decode_request(
        std::vector<std::uint8_t>(request.begin(), request.begin() + len), out))
        << "request prefix of " << len;
  }
  std::vector<std::uint8_t> padded = request;
  padded.push_back(0);
  net::WireRequest request_out;
  EXPECT_FALSE(net::decode_request(padded, request_out));

  ServiceOutcome outcome;
  outcome.state = ServiceState::Completed;
  outcome.session.console = "x\n";
  AttemptRecord record;
  record.outcome = "ok";
  outcome.session.history.push_back(record);
  const std::vector<std::uint8_t> response = net::encode_response(5, outcome);
  for (std::size_t len = 0; len < response.size(); ++len) {
    std::uint32_t id = 0;
    ServiceOutcome out;
    EXPECT_FALSE(net::decode_response(
        std::vector<std::uint8_t>(response.begin(), response.begin() + len),
        id, out))
        << "response prefix of " << len;
  }

  const std::vector<std::uint8_t> error =
      net::encode_error(1, net::WireError::IdleTimeout, "bye");
  for (std::size_t len = 0; len < error.size(); ++len) {
    net::WireErrorFrame out;
    EXPECT_FALSE(net::decode_error(
        std::vector<std::uint8_t>(error.begin(), error.begin() + len), out))
        << "error prefix of " << len;
  }
}

// --- loopback harness ------------------------------------------------------

/// One service behind one server on an ephemeral loopback port. Member
/// order is the teardown contract: the server stops (joining connection
/// threads) before the service it feeds dies.
struct WireHarness {
  rivertrail::ThreadPool pool{4};
  AnalysisService service;
  net::AnalysisServer server;

  WireHarness(const ServiceOptions& sopts, const net::ServerOptions& nopts)
      : service(pool, sopts), server(service, nopts) {}
};

ServiceOptions default_service_options() {
  ServiceOptions options;
  options.max_active = 2;
  options.max_queue = 16;
  options.max_per_tenant = 2;
  return options;
}

net::ClientOptions client_options(const net::AnalysisServer& server,
                                  const std::string& token) {
  net::ClientOptions options;
  options.port = server.port();
  options.token = token;
  options.io_timeout_ms = 20'000;
  return options;
}

net::WireRequest trivial_request(const std::string& name) {
  net::WireRequest request;
  request.name = name;
  request.source = "console.log(1 + 2);";
  request.max_ticks = 1'000'000;
  request.max_memory_bytes = 4u << 20;
  request.memory_estimate = 1u << 20;
  return request;
}

int connect_raw(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

struct RawFrame {
  bool got = false;
  bool closed = false;
  net::Frame frame;
};

RawFrame read_frame_raw(int fd, std::vector<std::uint8_t>& buffer,
                        int timeout_ms) {
  RawFrame out;
  const std::int64_t deadline = mono_ms() + timeout_ms;
  for (;;) {
    const net::DecodeResult decoded =
        net::decode_frame(buffer.data(), buffer.size(), 1u << 20);
    if (decoded.status == net::DecodeStatus::Ok) {
      buffer.erase(buffer.begin(),
                   buffer.begin() + std::ptrdiff_t(decoded.consumed));
      out.got = true;
      out.frame = decoded.frame;
      return out;
    }
    if (decoded.status == net::DecodeStatus::Bad) return out;
    const std::int64_t left = deadline - mono_ms();
    if (left <= 0) return out;
    if (net::wait_readable(fd, int(left)) != net::IoStatus::Ok) return out;
    std::uint8_t chunk[4096];
    const std::ptrdiff_t got = net::read_some(fd, chunk, sizeof(chunk));
    if (got <= 0) {
      out.closed = got == 0;
      return out;
    }
    buffer.insert(buffer.end(), chunk, chunk + got);
  }
}

// --- loopback end-to-end ---------------------------------------------------

TEST(NetServer, LoopbackServesMultipleTenantsEndToEnd) {
  WireHarness harness(default_service_options(), {});
  std::string error;
  ASSERT_TRUE(harness.server.start(&error)) << error;

  // Three tenants, five requests each, over persistent connections. The
  // open-server mode uses the raw token as the tenant name the service
  // caps and meters on.
  std::vector<std::unique_ptr<net::AnalysisClient>> clients;
  for (int t = 0; t < 3; ++t) {
    clients.push_back(std::make_unique<net::AnalysisClient>(
        client_options(harness.server, "tenant-" + std::to_string(t))));
    ASSERT_TRUE(clients.back()->connect(&error)) << error;
  }
  for (int i = 0; i < 15; ++i) {
    net::WireRequest request = trivial_request("e2e-" + std::to_string(i));
    const net::WireResult result =
        clients[std::size_t(i % 3)]->roundtrip(request);
    ASSERT_TRUE(result.ok()) << result.transport;
    EXPECT_EQ(result.outcome.state, ServiceState::Completed)
        << result.outcome.session.error;
    EXPECT_EQ(result.outcome.session.console, "3\n");
    EXPECT_EQ(result.outcome.session.name, "e2e-" + std::to_string(i));
    EXPECT_GE(result.outcome.session.attempts, 1);
  }
  clients.clear();

  const net::ServerStats stats = harness.server.stats();
  EXPECT_EQ(stats.requests_submitted, 15u);
  EXPECT_EQ(stats.responses_written, 15u);
  EXPECT_EQ(stats.connections_accepted, 3u);
  EXPECT_EQ(stats.malformed_frames, 0u);
  EXPECT_EQ(harness.service.stats().completed, 15u);
}

TEST(NetServer, ShedIsSurfacedInTheResponseFrame) {
  // A 1-byte governor ceiling sheds every admission with "memory-pressure";
  // the wire client must see the structured shed, not an error or a hang.
  ServiceOptions sopts = default_service_options();
  sopts.governor.ceiling_bytes = 1;
  WireHarness harness(sopts, {});
  std::string error;
  ASSERT_TRUE(harness.server.start(&error)) << error;

  net::AnalysisClient client(client_options(harness.server, "t"));
  ASSERT_TRUE(client.connect(&error)) << error;
  const net::WireResult result = client.roundtrip(trivial_request("shed-me"));
  ASSERT_TRUE(result.ok()) << result.transport;
  EXPECT_EQ(result.outcome.state, ServiceState::Shed);
  EXPECT_EQ(result.outcome.shed_reason, "memory-pressure");
}

TEST(NetServer, WatchdogQuarantineIsSurfacedInTheResponseFrame) {
  ServiceOptions sopts = default_service_options();
  sopts.watchdog_interval_ms = 5;
  sopts.watchdog_stuck_ms = 50;
  WireHarness harness(sopts, {});
  std::string error;
  ASSERT_TRUE(harness.server.start(&error)) << error;

  net::AnalysisClient client(client_options(harness.server, "t"));
  ASSERT_TRUE(client.connect(&error)) << error;
  net::WireRequest request;
  request.name = "stuck";
  // Diverging loop, no tick budget: only the watchdog's sticky cancel ends
  // it, and the quarantine verdict must cross the wire intact.
  request.source = "var i = 0; while (i < 1) { i = i - 1; }";
  request.max_ticks = 0;
  request.max_memory_bytes = 4u << 20;
  const net::WireResult result = client.roundtrip(request);
  ASSERT_TRUE(result.ok()) << result.transport;
  EXPECT_EQ(result.outcome.state, ServiceState::Quarantined);
  EXPECT_TRUE(result.outcome.watchdog_quarantined);
}

// --- hostile-client defense ------------------------------------------------

TEST(NetServer, MalformedFrameGetsTypedErrorWithoutTouchingTheEngine) {
  WireHarness harness(default_service_options(), {});
  std::string error;
  ASSERT_TRUE(harness.server.start(&error)) << error;

  const int fd = connect_raw(harness.server.port());
  ASSERT_GE(fd, 0);
  const char garbage[] = "NOT A FRAME AT ALL";
  net::write_all(fd, garbage, sizeof(garbage) - 1, 1000);
  std::vector<std::uint8_t> buffer;
  const RawFrame raw = read_frame_raw(fd, buffer, 5000);
  ASSERT_TRUE(raw.got) << "no typed error frame";
  ASSERT_EQ(raw.frame.kind, net::FrameKind::Error);
  net::WireErrorFrame frame_error;
  ASSERT_TRUE(net::decode_error(raw.frame.payload, frame_error));
  EXPECT_EQ(frame_error.code, net::WireError::BadMagic);
  // ...then the close.
  const RawFrame after = read_frame_raw(fd, buffer, 5000);
  EXPECT_FALSE(after.got);
  EXPECT_TRUE(after.closed);
  ::close(fd);

  // The engine never saw it.
  EXPECT_EQ(harness.server.stats().requests_submitted, 0u);
  EXPECT_EQ(harness.service.stats().submitted, 0u);
  EXPECT_EQ(harness.server.stats().malformed_frames, 1u);
}

TEST(NetServer, SlowlorisDiesWithTypedReadTimeout) {
  net::ServerOptions nopts;
  nopts.read_timeout_ms = 100;
  WireHarness harness(default_service_options(), nopts);
  std::string error;
  ASSERT_TRUE(harness.server.start(&error)) << error;

  const int fd = connect_raw(harness.server.port());
  ASSERT_GE(fd, 0);
  const std::vector<std::uint8_t> frame =
      net::make_request_frame("t", trivial_request("drip"));
  net::write_all(fd, frame.data(), 8, 1000);  // a started frame, never finished

  std::vector<std::uint8_t> buffer;
  const RawFrame raw = read_frame_raw(fd, buffer, 5000);
  ASSERT_TRUE(raw.got) << "no typed error frame";
  ASSERT_EQ(raw.frame.kind, net::FrameKind::Error);
  net::WireErrorFrame frame_error;
  ASSERT_TRUE(net::decode_error(raw.frame.payload, frame_error));
  EXPECT_EQ(frame_error.code, net::WireError::ReadTimeout);
  ::close(fd);
  EXPECT_GE(harness.server.stats().connections_timed_out, 1u);
}

TEST(NetServer, IdleConnectionIsClosedWithTypedTimeout) {
  net::ServerOptions nopts;
  nopts.idle_timeout_ms = 100;
  WireHarness harness(default_service_options(), nopts);
  std::string error;
  ASSERT_TRUE(harness.server.start(&error)) << error;

  const int fd = connect_raw(harness.server.port());
  ASSERT_GE(fd, 0);
  std::vector<std::uint8_t> buffer;
  const RawFrame raw = read_frame_raw(fd, buffer, 5000);
  ASSERT_TRUE(raw.got) << "no typed error frame";
  ASSERT_EQ(raw.frame.kind, net::FrameKind::Error);
  net::WireErrorFrame frame_error;
  ASSERT_TRUE(net::decode_error(raw.frame.payload, frame_error));
  EXPECT_EQ(frame_error.code, net::WireError::IdleTimeout);
  const RawFrame after = read_frame_raw(fd, buffer, 5000);
  EXPECT_TRUE(after.closed);
  ::close(fd);
}

TEST(NetServer, AuthFailureIsTypedAndClosesBeforeTheEngine) {
  net::ServerOptions nopts;
  nopts.tenants = {{"tok-good", "good"}};
  WireHarness harness(default_service_options(), nopts);
  std::string error;
  ASSERT_TRUE(harness.server.start(&error)) << error;

  net::AnalysisClient bad(client_options(harness.server, "tok-evil"));
  ASSERT_TRUE(bad.connect(&error)) << error;
  const net::WireResult rejected = bad.roundtrip(trivial_request("intruder"));
  ASSERT_EQ(rejected.kind, net::WireResult::Kind::ErrorFrame);
  EXPECT_EQ(rejected.error.code, net::WireError::AuthFailed);
  EXPECT_EQ(harness.service.stats().submitted, 0u);

  net::AnalysisClient good(client_options(harness.server, "tok-good"));
  ASSERT_TRUE(good.connect(&error)) << error;
  const net::WireResult served = good.roundtrip(trivial_request("resident"));
  ASSERT_TRUE(served.ok()) << served.transport;
  EXPECT_EQ(served.outcome.state, ServiceState::Completed);
}

TEST(NetServer, RateQuotaRejectsBurstAndConnectionSurvives) {
  net::ServerOptions nopts;
  nopts.tenant_requests_per_sec = 2;
  nopts.max_in_flight_per_conn = 16;  // the quota must trip first
  WireHarness harness(default_service_options(), nopts);
  std::string error;
  ASSERT_TRUE(harness.server.start(&error)) << error;

  const int fd = connect_raw(harness.server.port());
  ASSERT_GE(fd, 0);
  std::vector<std::uint8_t> batch;
  for (int i = 0; i < 6; ++i) {
    net::WireRequest request = trivial_request("burst");
    request.id = std::uint32_t(i + 1);
    const std::vector<std::uint8_t> frame = net::make_request_frame("t", request);
    batch.insert(batch.end(), frame.begin(), frame.end());
  }
  net::write_all(fd, batch.data(), batch.size(), 2000);

  int served = 0;
  int limited = 0;
  std::vector<std::uint8_t> buffer;
  for (int i = 0; i < 6; ++i) {
    const RawFrame raw = read_frame_raw(fd, buffer, 20'000);
    ASSERT_TRUE(raw.got) << "reply " << i << " missing";
    if (raw.frame.kind == net::FrameKind::Response) {
      ++served;
      continue;
    }
    ASSERT_EQ(raw.frame.kind, net::FrameKind::Error);
    net::WireErrorFrame frame_error;
    ASSERT_TRUE(net::decode_error(raw.frame.payload, frame_error));
    EXPECT_EQ(frame_error.code, net::WireError::RateLimited);
    ++limited;
  }
  EXPECT_GE(served, 1);
  EXPECT_GE(limited, 1);
  EXPECT_EQ(served + limited, 6);

  // A policy rejection keeps the connection alive for the next window.
  std::this_thread::sleep_for(1100ms);
  const std::vector<std::uint8_t> again =
      net::make_request_frame("t", trivial_request("next-window"));
  net::write_all(fd, again.data(), again.size(), 1000);
  const RawFrame raw = read_frame_raw(fd, buffer, 20'000);
  ASSERT_TRUE(raw.got);
  EXPECT_EQ(raw.frame.kind, net::FrameKind::Response);
  ::close(fd);
  EXPECT_GE(harness.server.stats().rate_limited, 1u);
}

TEST(NetServer, InFlightCapRejectsPipelineOverflowAndConnectionSurvives) {
  net::ServerOptions nopts;
  nopts.max_in_flight_per_conn = 2;
  WireHarness harness(default_service_options(), nopts);
  std::string error;
  ASSERT_TRUE(harness.server.start(&error)) << error;

  const int fd = connect_raw(harness.server.port());
  ASSERT_GE(fd, 0);
  // One batched write so every frame is decoded before any outcome can be
  // flushed: requests 3..5 deterministically exceed the cap of 2.
  std::vector<std::uint8_t> batch;
  for (int i = 0; i < 5; ++i) {
    net::WireRequest request;
    request.id = std::uint32_t(i + 1);
    request.name = "pipe-" + std::to_string(i);
    request.source =
        "var s = 0; var i = 0;\n"
        "while (i < 200000) { s = s + i; i = i + 1; }\n"
        "console.log(s);\n";
    request.max_ticks = 10'000'000;
    request.max_memory_bytes = 8u << 20;
    const std::vector<std::uint8_t> frame = net::make_request_frame("t", request);
    batch.insert(batch.end(), frame.begin(), frame.end());
  }
  net::write_all(fd, batch.data(), batch.size(), 2000);

  int served = 0;
  int rejected = 0;
  std::vector<std::uint8_t> buffer;
  for (int i = 0; i < 5; ++i) {
    const RawFrame raw = read_frame_raw(fd, buffer, 30'000);
    ASSERT_TRUE(raw.got) << "reply " << i << " missing";
    if (raw.frame.kind == net::FrameKind::Response) {
      ++served;
      continue;
    }
    ASSERT_EQ(raw.frame.kind, net::FrameKind::Error);
    net::WireErrorFrame frame_error;
    ASSERT_TRUE(net::decode_error(raw.frame.payload, frame_error));
    EXPECT_EQ(frame_error.code, net::WireError::TooManyInFlight);
    ++rejected;
  }
  EXPECT_GE(served, 2);
  EXPECT_GE(rejected, 1);

  const std::vector<std::uint8_t> again =
      net::make_request_frame("t", trivial_request("after"));
  net::write_all(fd, again.data(), again.size(), 1000);
  const RawFrame raw = read_frame_raw(fd, buffer, 20'000);
  ASSERT_TRUE(raw.got);
  EXPECT_EQ(raw.frame.kind, net::FrameKind::Response);
  ::close(fd);
}

TEST(NetServer, ConnectionCapRejectsExcessWithTypedServerBusy) {
  net::ServerOptions nopts;
  nopts.max_connections = 1;
  WireHarness harness(default_service_options(), nopts);
  std::string error;
  ASSERT_TRUE(harness.server.start(&error)) << error;

  net::AnalysisClient keeper(client_options(harness.server, "t"));
  ASSERT_TRUE(keeper.connect(&error)) << error;
  // A served round-trip proves the slot is occupied, not just backlogged.
  ASSERT_TRUE(keeper.roundtrip(trivial_request("keeper")).ok());

  const int fd = connect_raw(harness.server.port());
  ASSERT_GE(fd, 0);
  std::vector<std::uint8_t> buffer;
  const RawFrame raw = read_frame_raw(fd, buffer, 5000);
  ASSERT_TRUE(raw.got) << "no ServerBusy goodbye";
  ASSERT_EQ(raw.frame.kind, net::FrameKind::Error);
  net::WireErrorFrame frame_error;
  ASSERT_TRUE(net::decode_error(raw.frame.payload, frame_error));
  EXPECT_EQ(frame_error.code, net::WireError::ServerBusy);
  ::close(fd);
  EXPECT_GE(harness.server.stats().connections_rejected, 1u);

  // The keeper's slot still works.
  EXPECT_TRUE(keeper.roundtrip(trivial_request("still-here")).ok());
}

TEST(NetServer, GracefulDrainFlushesInFlightOutcomeBeforeClosing) {
  WireHarness harness(default_service_options(), {});
  std::string error;
  ASSERT_TRUE(harness.server.start(&error)) << error;

  net::AnalysisClient client(client_options(harness.server, "t"));
  ASSERT_TRUE(client.connect(&error)) << error;
  net::WireRequest request;
  request.name = "in-flight-at-stop";
  request.source =
      "var s = 0; var i = 0;\n"
      "while (i < 200000) { s = s + i; i = i + 1; }\n"
      "console.log(s);\n";
  request.max_ticks = 10'000'000;
  request.max_memory_bytes = 8u << 20;
  ASSERT_TRUE(client.send_request(request, &error)) << error;

  // Let the server read and submit it, then stop: the drain must still
  // deliver the outcome (the wire mirror of "queued requests still run").
  std::this_thread::sleep_for(50ms);
  harness.server.stop();
  EXPECT_FALSE(harness.server.running());

  const net::WireResult result = client.read_result();
  ASSERT_TRUE(result.ok()) << result.transport;
  EXPECT_EQ(result.outcome.state, ServiceState::Completed);
}

TEST(NetServer, StopWithoutTrafficIsCleanAndIdempotent) {
  WireHarness harness(default_service_options(), {});
  std::string error;
  ASSERT_TRUE(harness.server.start(&error)) << error;
  harness.server.stop();
  harness.server.stop();  // idempotent
  EXPECT_FALSE(harness.server.running());
  // Restartable on a fresh port.
  ASSERT_TRUE(harness.server.start(&error)) << error;
  net::AnalysisClient client(client_options(harness.server, "t"));
  ASSERT_TRUE(client.connect(&error)) << error;
  EXPECT_TRUE(client.roundtrip(trivial_request("after-restart")).ok());
}

// --- socket fault-injection sweep ------------------------------------------

TEST(NetServer, FaultSweepEveryKEndsStructuredAndServerSurvives) {
  WireHarness harness(default_service_options(), {});
  std::string error;
  ASSERT_TRUE(harness.server.start(&error)) << error;

  const auto one_exchange = [&]() -> net::WireResult {
    net::ClientOptions copts = client_options(harness.server, "t");
    copts.io_timeout_ms = 10'000;
    net::AnalysisClient client(copts);
    std::string connect_error;
    if (!client.connect(&connect_error)) {
      net::WireResult result;
      result.transport = "connect: " + connect_error;
      return result;
    }
    return client.roundtrip(trivial_request("fault-probe"));
  };

  // Size the sweep: count the I/O events of one clean exchange by arming a
  // countdown that never reaches zero.
  net::io_faults::arm(net::io_faults::Kind::ShortRead, 1'000'000'000);
  {
    const net::WireResult clean = one_exchange();
    ASSERT_TRUE(clean.ok()) << clean.transport;
  }
  const std::int64_t events = net::io_faults::events_observed();
  net::io_faults::disarm();
  ASSERT_GT(events, 0);
  const std::int64_t sweep = events < 64 ? events : 64;

  const net::io_faults::Kind kinds[] = {
      net::io_faults::Kind::ShortRead, net::io_faults::Kind::ShortWrite,
      net::io_faults::Kind::Eintr, net::io_faults::Kind::Disconnect};
  for (const net::io_faults::Kind kind : kinds) {
    for (std::int64_t k = 1; k <= sweep; ++k) {
      net::io_faults::arm(kind, k);
      const net::WireResult result = one_exchange();
      net::io_faults::disarm();
      // Every interleaving ends structured: a served outcome, a typed
      // error frame, or a client-side transport verdict — never a hang
      // (the roundtrip's own deadline enforces that) and never a crash.
      if (result.ok()) {
        EXPECT_EQ(result.outcome.state, ServiceState::Completed)
            << "kind=" << int(kind) << " k=" << k;
      } else {
        EXPECT_FALSE(result.transport.empty() &&
                     result.kind != net::WireResult::Kind::ErrorFrame)
            << "kind=" << int(kind) << " k=" << k;
      }
    }
    // After each kind's sweep the server still serves cleanly.
    const net::WireResult after = one_exchange();
    ASSERT_TRUE(after.ok()) << "kind=" << int(kind) << ": " << after.transport;
    EXPECT_EQ(after.outcome.state, ServiceState::Completed);
  }
}

}  // namespace
}  // namespace jsceres
