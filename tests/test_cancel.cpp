// Cooperative cancellation across the scheduler: token/deadline primitives,
// parallel_for observation sweeps, cancel-during-steal from another thread,
// mid-pipeline cancellation draining as bubbles, cancel-vs-exception races
// in TaskGraph, the event loop's dispatch boundary, and the interpreter's
// tick probe. Every test reuses its pool afterwards — cancellation must
// drain to a clean joined state, never poison the runtime. This binary runs
// under the TSan and ASan CI jobs.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "dom/page.h"
#include "interp/interpreter.h"
#include "js/parser.h"
#include "rivertrail/parallel_for.h"
#include "rivertrail/parallel_pipeline.h"
#include "rivertrail/task_graph.h"
#include "rivertrail/thread_pool.h"
#include "support/cancel.h"
#include "support/clock.h"

namespace jsceres::rivertrail {
namespace {

/// A cancelled (or any) run must leave the pool fully usable: run a clean
/// loop over it and check the result.
void expect_pool_reusable(ThreadPool& pool) {
  std::atomic<std::int64_t> sum{0};
  parallel_for(pool, 0, 1000, [&sum](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(sum.load(), 1000 * 999 / 2);
}

TEST(CancelSource, LatchesFirstReasonAndResetKeepsExplicitCancel) {
  CancelSource source;
  EXPECT_FALSE(source.cancelled());
  EXPECT_EQ(source.reason(), CancelReason::None);

  source.request_cancel();
  source.expire_now();  // loses the race: first reason wins
  EXPECT_TRUE(source.cancelled());
  EXPECT_EQ(source.reason(), CancelReason::Cancelled);

  source.reset();  // an explicit cancel survives re-arming for a retry
  EXPECT_TRUE(source.cancelled());
  EXPECT_EQ(source.reason(), CancelReason::Cancelled);
}

TEST(CancelSource, DeadlineExpiryLatchesAndResetClearsIt) {
  CancelSource source;
  source.set_deadline(std::chrono::steady_clock::now());
  EXPECT_TRUE(source.cancelled());
  EXPECT_EQ(source.reason(), CancelReason::DeadlineExpired);

  source.reset();  // a retry gets a fresh deadline budget
  EXPECT_FALSE(source.cancelled());
  EXPECT_EQ(source.reason(), CancelReason::None);
}

TEST(CancelSource, ObservationCountdownFiresAtNthCheck) {
  CancelSource source;
  source.cancel_after_observations(3);
  const CancelToken token(source);
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::Cancelled);
}

TEST(CancelToken, DefaultTokenIsInert) {
  const CancelToken token;
  EXPECT_FALSE(token.valid());
  EXPECT_FALSE(token.cancelled());
  EXPECT_NO_THROW(token.raise_if_cancelled());
}

TEST(ParallelForCancel, PreCancelledThrowsBeforeAnyBody) {
  ThreadPool pool(4);
  CancelSource source;
  source.request_cancel();
  std::atomic<int> ran{0};
  EXPECT_THROW(parallel_for(
                   pool, 0, 1000,
                   [&ran](std::int64_t lo, std::int64_t hi) {
                     ran.fetch_add(int(hi - lo), std::memory_order_relaxed);
                   },
                   Schedule::Static, 0, CancelToken(source)),
               CancelledError);
  EXPECT_EQ(ran.load(), 0);
  expect_pool_reusable(pool);
}

TEST(ParallelForCancel, ObservationSweepDrainsCleanBothSchedules) {
  ThreadPool pool(4);
  for (const Schedule schedule : {Schedule::Static, Schedule::Dynamic}) {
    for (const std::int64_t k : {1, 2, 3, 5, 8, 13, 21, 64, 200}) {
      CancelSource source;
      source.cancel_after_observations(k);
      std::atomic<std::int64_t> ran{0};
      bool cancelled = false;
      try {
        parallel_for(
            pool, 0, 4000,
            [&ran](std::int64_t lo, std::int64_t hi) {
              ran.fetch_add(hi - lo, std::memory_order_relaxed);
            },
            schedule, 4, CancelToken(source));
      } catch (const CancelledError& e) {
        cancelled = true;
        EXPECT_EQ(e.cancel_reason(), CancelReason::Cancelled);
      }
      // Either the loop finished ahead of the K-th observation or it was cut
      // short — both must leave a drained gate and a usable pool.
      if (!cancelled) EXPECT_EQ(ran.load(), 4000);
      EXPECT_LE(ran.load(), 4000);
    }
  }
  expect_pool_reusable(pool);
}

TEST(ParallelForCancel, ExpiredDeadlineRaisesDeadlineReason) {
  ThreadPool pool(2);
  CancelSource source;
  source.set_deadline(std::chrono::steady_clock::now());
  try {
    parallel_for(pool, 0, 100, [](std::int64_t, std::int64_t) {},
                 Schedule::Static, 0, CancelToken(source));
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.cancel_reason(), CancelReason::DeadlineExpired);
  }
  expect_pool_reusable(pool);
}

TEST(ParallelForCancel, CancelFromAnotherThreadDuringStealHeavyLoop) {
  ThreadPool pool(4);
  CancelSource source;
  std::atomic<std::int64_t> ran{0};
  // Dynamic schedule with grain 1 maximizes steal traffic; the canceller
  // waits until workers are demonstrably mid-loop, so the cancel lands in
  // the middle of live steals rather than before or after the run.
  std::thread canceller([&] {
    while (ran.load(std::memory_order_relaxed) < 64) std::this_thread::yield();
    source.request_cancel();
  });
  bool cancelled = false;
  try {
    parallel_for(
        pool, 0, 2'000'000,
        [&ran](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            ran.fetch_add(1, std::memory_order_relaxed);
            for (volatile int spin = 0; spin < 50; ++spin) {
            }
          }
        },
        Schedule::Dynamic, 1, CancelToken(source));
  } catch (const CancelledError&) {
    cancelled = true;
  }
  canceller.join();
  if (cancelled) EXPECT_LT(ran.load(), 2'000'000);
  expect_pool_reusable(pool);
}

TEST(ParallelChunksCancel, SweepDrains) {
  ThreadPool pool(4);
  for (const std::int64_t k : {1, 2, 4, 9}) {
    CancelSource source;
    source.cancel_after_observations(k);
    std::atomic<int> chunks_run{0};
    try {
      parallel_chunks(
          pool, 1024, 16,
          [&chunks_run](std::int64_t, std::int64_t, std::int64_t) {
            chunks_run.fetch_add(1, std::memory_order_relaxed);
          },
          CancelToken(source));
    } catch (const CancelledError&) {
    }
    EXPECT_LE(chunks_run.load(), 16);
  }
  expect_pool_reusable(pool);
}

TEST(PipelineCancel, MidStreamCancelDrainsAsBubblesAndCommitStaysPrefix) {
  ThreadPool pool(4);
  constexpr std::size_t kTokens = 64;
  for (const std::int64_t k : {1, 3, 7, 15, 31, 90}) {
    CancelSource source;
    source.cancel_after_observations(k);
    std::vector<std::size_t> committed;
    bool cancelled = false;
    try {
      std::vector<PipelineStage> stages;
      stages.push_back(serial_stage([](std::size_t) {}));
      stages.push_back(parallel_stage([](std::size_t) {
        for (volatile int spin = 0; spin < 100; ++spin) {
        }
      }));
      stages.push_back(serial_stage(
          [&committed](std::size_t ticket) { committed.push_back(ticket); }));
      run_pipeline(pool, kTokens, 4, std::move(stages), CancelToken(source));
    } catch (const CancelledError&) {
      cancelled = true;
    }
    // The commit stage is serial-in-order and cancellation skips every body
    // after the latch, so the committed tickets are always a dense prefix —
    // cancelled tokens drained through the turnstiles as bubbles.
    for (std::size_t i = 0; i < committed.size(); ++i) {
      EXPECT_EQ(committed[i], i);
    }
    if (!cancelled) EXPECT_EQ(committed.size(), kTokens);
  }
  // The same pool runs a full pipeline to completion afterwards.
  std::atomic<std::size_t> done{0};
  const std::size_t produced = parallel_pipeline(
      pool, 32, 4, serial_stage([](std::size_t) {}),
      parallel_stage([&done](std::size_t) { done.fetch_add(1); }),
      serial_stage([](std::size_t) {}));
  EXPECT_EQ(produced, 32u);
  EXPECT_EQ(done.load(), 32u);
  expect_pool_reusable(pool);
}

TEST(TaskGraphCancel, CancelVsExceptionRaceAlwaysDrainsAndExceptionWins) {
  ThreadPool pool(4);
  // Diamond with a throwing arm: A -> {B (throws), C} -> D. Sweeping the
  // cancel observation K across the graph's handful of checks covers cancel
  // landing before A, between nodes, and after the throw.
  for (std::int64_t k = 1; k <= 12; ++k) {
    TaskGraph graph(pool);
    std::atomic<bool> threw{false};
    const auto a = graph.add([] {});
    const auto b = graph.add([&threw] {
      threw.store(true, std::memory_order_relaxed);
      throw std::runtime_error("boom");
    });
    const auto c = graph.add([] {});
    const auto d = graph.add([] {});
    graph.depend(a, b);
    graph.depend(a, c);
    graph.depend(b, d);
    graph.depend(c, d);

    CancelSource source;
    source.cancel_after_observations(k);
    bool saw_body_exception = false;
    bool saw_cancel = false;
    try {
      graph.run(CancelToken(source));
      FAIL() << "diamond must either throw or be cancelled (k=" << k << ")";
    } catch (const CancelledError&) {
      saw_cancel = true;
    } catch (const std::runtime_error& e) {
      saw_body_exception = true;
      EXPECT_STREQ(e.what(), "boom");
    }
    EXPECT_TRUE(saw_body_exception || saw_cancel);
    // First-exception-wins beats cancellation at the join: whenever the
    // throwing body actually ran, its exception is what surfaces.
    if (threw.load()) {
      EXPECT_TRUE(saw_body_exception);
      EXPECT_FALSE(saw_cancel);
    }
    // The graph is drained and re-armable: a fresh run with an inert token
    // deterministically surfaces the body exception.
    EXPECT_THROW(graph.run(), std::runtime_error);
  }
  expect_pool_reusable(pool);
}

TEST(TaskGraphCancel, CancelledChainReRunsToCompletion) {
  ThreadPool pool(2);
  TaskGraph graph(pool);
  std::atomic<int> ran{0};
  TaskGraph::NodeId prev = graph.add([&ran] { ran.fetch_add(1); });
  for (int i = 1; i < 20; ++i) {
    const TaskGraph::NodeId node = graph.add([&ran] { ran.fetch_add(1); });
    graph.depend(prev, node);
    prev = node;
  }
  CancelSource source;
  source.cancel_after_observations(5);
  EXPECT_THROW(graph.run(CancelToken(source)), CancelledError);
  EXPECT_LT(ran.load(), 20);

  ran.store(0);
  graph.run();  // re-armed counters, inert token: every node runs
  EXPECT_EQ(ran.load(), 20);
}

TEST(EventLoopCancel, CancelAtDispatchBoundaryLeavesQueueResumable) {
  const js::Program program = js::parse(
      "var n = 0;"
      "function f() { n = n + 1; if (n < 10) { setTimeout(f, 10); } }"
      "setTimeout(f, 10);",
      "<cancel-loop>");
  VirtualClock clock;
  interp::Interpreter interp(program, clock, nullptr);
  dom::Page page(interp);
  interp.run();

  CancelSource source;
  source.cancel_after_observations(4);
  EXPECT_THROW(page.event_loop().run(1000, CancelToken(source)), CancelledError);
  const std::int64_t dispatched = page.event_loop().tasks_dispatched();
  EXPECT_LT(dispatched, 10);

  // The undispatched timers survived the cancelled run: a fresh run drains
  // the remaining chain to completion.
  page.event_loop().run(1000);
  EXPECT_EQ(page.event_loop().tasks_dispatched(), 10);
}

TEST(InterpreterCancel, TickProbeRaisesCancelledErrorAndEngineStaysClean) {
  const js::Program program =
      js::parse("var x = 0; while (true) { x = x + 1; }", "<runaway>");
  CancelSource source;
  source.cancel_after_observations(2);
  interp::InterpreterConfig config;
  config.cancel = CancelToken(source);
  VirtualClock clock;
  interp::Interpreter interp(program, clock, nullptr, config);
  try {
    interp.run();
    FAIL() << "runaway loop must be cancelled";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.cancel_reason(), CancelReason::Cancelled);
  }
  // CancelledError is an EngineError: the PR 6 recovery contract holds and
  // the same engine object accepts another (still-cancelled) run.
  EXPECT_EQ(interp.debug_arg_stack_in_use(), 0u);
  EXPECT_THROW(interp.run(), CancelledError);
  EXPECT_EQ(interp.debug_arg_stack_in_use(), 0u);
}

TEST(InterpreterCancel, DeadlineExpiryIsRecoverableAndResetRestoresTheRun) {
  const js::Program program = js::parse(
      "var x = 0; for (var i = 0; i < 200000; i = i + 1) { x = x + 1; }",
      "<bounded>");
  CancelSource source;
  interp::InterpreterConfig config;
  config.cancel = CancelToken(source);
  VirtualClock clock;
  interp::Interpreter interp(program, clock, nullptr, config);

  source.set_deadline(std::chrono::steady_clock::now());  // already expired
  try {
    interp.run();
    FAIL() << "expired deadline must cancel the run";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.cancel_reason(), CancelReason::DeadlineExpired);
  }
  EXPECT_EQ(interp.debug_arg_stack_in_use(), 0u);

  source.reset();  // retry semantics: the expiry clears, the engine reruns
  EXPECT_NO_THROW(interp.run());
  EXPECT_EQ(interp.debug_arg_stack_in_use(), 0u);
}

}  // namespace
}  // namespace jsceres::rivertrail
