#include <gtest/gtest.h>

#include "interp/interpreter.h"
#include "js/parser.h"
#include "support/clock.h"

namespace jsceres::interp {
namespace {

/// Run `source` and return the value of global `result`.
Value run_and_get(const std::string& source, const std::string& name = "result") {
  static std::vector<std::unique_ptr<js::Program>> keep_alive;
  keep_alive.push_back(std::make_unique<js::Program>(js::parse(source)));
  static std::vector<std::unique_ptr<VirtualClock>> clocks;
  clocks.push_back(std::make_unique<VirtualClock>());
  auto interp = std::make_shared<Interpreter>(*keep_alive.back(), *clocks.back());
  interp->run();
  return interp->global(name);
}

double run_number(const std::string& source) {
  const Value v = run_and_get(source);
  EXPECT_TRUE(v.is_number()) << "result is not a number";
  return v.as_number();
}

std::string run_string(const std::string& source) {
  const Value v = run_and_get(source);
  EXPECT_TRUE(v.is_string()) << "result is not a string";
  return v.as_string();
}

TEST(Interp, Arithmetic) {
  EXPECT_DOUBLE_EQ(run_number("var result = 1 + 2 * 3 - 4 / 2;"), 5);
  EXPECT_DOUBLE_EQ(run_number("var result = 7 % 3;"), 1);
  EXPECT_DOUBLE_EQ(run_number("var result = (1 + 2) * 3;"), 9);
}

TEST(Interp, StringConcat) {
  EXPECT_EQ(run_string("var result = 'a' + 1 + true;"), "a1true");
  EXPECT_EQ(run_string("var result = 1 + 2 + 'x';"), "3x");
}

TEST(Interp, ComparisonAndEquality) {
  EXPECT_DOUBLE_EQ(run_number("var result = (1 < 2) + (2 <= 2) + ('b' > 'a');"), 3);
  EXPECT_DOUBLE_EQ(run_number("var result = (1 == '1') + (1 === '1') + (null == undefined);"), 2);
  EXPECT_DOUBLE_EQ(run_number("var result = (NaN === NaN) ? 1 : 0;"), 0);
}

TEST(Interp, BitwiseOps) {
  EXPECT_DOUBLE_EQ(run_number("var result = (5 & 3) + (5 | 3) + (5 ^ 3);"), 14);
  EXPECT_DOUBLE_EQ(run_number("var result = 1 << 4;"), 16);
  EXPECT_DOUBLE_EQ(run_number("var result = -8 >> 1;"), -4);
  EXPECT_DOUBLE_EQ(run_number("var result = -1 >>> 28;"), 15);
  EXPECT_DOUBLE_EQ(run_number("var result = ~5;"), -6);
}

TEST(Interp, LogicalShortCircuit) {
  EXPECT_DOUBLE_EQ(
      run_number("var calls = 0;\n"
                 "function f() { calls++; return true; }\n"
                 "var x = false && f();\n"
                 "var y = true || f();\n"
                 "var result = calls;"),
      0);
  EXPECT_EQ(run_string("var result = 'a' || 'b';"), "a");
  EXPECT_EQ(run_string("var result = '' || 'b';"), "b");
}

TEST(Interp, VarFunctionScoping) {
  // `var p` inside the loop shares one binding — the paper's Fig. 6 point.
  EXPECT_DOUBLE_EQ(
      run_number("function f() {\n"
                 "  var fns = [];\n"
                 "  for (var i = 0; i < 3; i++) { var p = i; fns.push(function () { return p; }); }\n"
                 "  return fns[0]() + fns[1]() + fns[2]();\n"
                 "}\n"
                 "var result = f();"),
      6);  // all three closures see p == 2
}

TEST(Interp, ClosuresCaptureEnvironment) {
  EXPECT_DOUBLE_EQ(
      run_number("function counter() {\n"
                 "  var n = 0;\n"
                 "  return function () { n++; return n; };\n"
                 "}\n"
                 "var c = counter();\n"
                 "c(); c();\n"
                 "var result = c();"),
      3);
}

// Environment pooling: thousands of calls cycle activations through the
// free list; recycled environments must not leak bindings into later calls,
// and environments still referenced by a live closure must not be recycled.
TEST(Interp, PooledEnvironmentsDoNotLeakAcrossCalls) {
  EXPECT_DOUBLE_EQ(
      run_number("function leaf(x) { var local = x * 2; return local; }\n"
                 "function mid(x) { var a = leaf(x); var b = leaf(x + 1); return a + b; }\n"
                 "var total = 0;\n"
                 "for (var i = 0; i < 2000; i++) { total += mid(i % 7); }\n"
                 "var result = total;"),
      // sum over i of (2*(i%7) + 2*((i%7)+1)); i%7 cycles 0..6 evenly plus
      // 2000%7=5 leftovers of 0..4: 285*(2*21+2*28) + (2*10+2*15).
      285 * (2 * 21 + 2 * 28) + (2 * 10 + 2 * 15));
}

TEST(Interp, ClosureKeepsEnvironmentOutOfPool) {
  // Each counter() call's activation is captured by the returned closure;
  // interleaved calls must keep distinct states even as sibling activations
  // recycle.
  EXPECT_DOUBLE_EQ(
      run_number("function counter() { var n = 0; return function () { n++; return n; }; }\n"
                 "var a = counter();\n"
                 "var b = counter();\n"
                 "function churn(k) { var t = 0; for (var i = 0; i < k; i++) { t += i; } return t; }\n"
                 "a(); churn(50); b(); a(); churn(50); b(); b();\n"
                 "var result = a() * 10 + b();  // a: 3rd call, b: 4th call"),
      34);
}

TEST(Interp, ClosureValueSurvivesInterpreterDestruction) {
  // The env pool detaches when the interpreter dies; a Value holding the
  // closure (and thus the environment chain) must stay usable to destroy
  // afterwards without touching freed pool memory.
  Value survivor;
  {
    static js::Program program = js::parse(
        "function make() { var payload = 'alive'; return function () { return payload; }; }\n"
        "var keep = make();");
    VirtualClock clock;
    Interpreter interp(program, clock);
    interp.run();
    survivor = interp.global("keep");
    EXPECT_TRUE(survivor.is_object());
  }
  // Interpreter and pool owner are gone; dropping the last reference walks
  // the closure's environment chain through the detached pool.
  survivor = Value();
  SUCCEED();
}

TEST(Interp, WhileAndDoWhile) {
  EXPECT_DOUBLE_EQ(run_number("var i = 0; while (i < 5) { i++; } var result = i;"), 5);
  EXPECT_DOUBLE_EQ(run_number("var i = 9; do { i++; } while (false); var result = i;"), 10);
}

TEST(Interp, BreakContinue) {
  EXPECT_DOUBLE_EQ(
      run_number("var s = 0;\n"
                 "for (var i = 0; i < 10; i++) {\n"
                 "  if (i === 3) { continue; }\n"
                 "  if (i === 6) { break; }\n"
                 "  s += i;\n"
                 "}\n"
                 "var result = s;"),
      0 + 1 + 2 + 4 + 5);
}

TEST(Interp, ForInOverObject) {
  EXPECT_EQ(run_string("var o = {a: 1, b: 2, c: 3};\n"
                       "var keys = '';\n"
                       "for (var k in o) { keys += k; }\n"
                       "var result = keys;"),
            "abc");
}

TEST(Interp, ForInOverArrayYieldsIndices) {
  EXPECT_EQ(run_string("var a = [10, 20, 30];\n"
                       "var keys = '';\n"
                       "for (var k in a) { keys += k; }\n"
                       "var result = keys;"),
            "012");
}

TEST(Interp, ObjectsAndPrototypes) {
  EXPECT_DOUBLE_EQ(
      run_number("function Point(x, y) { this.x = x; this.y = y; }\n"
                 "Point.prototype.norm2 = function () { return this.x * this.x + this.y * this.y; };\n"
                 "var p = new Point(3, 4);\n"
                 "var result = p.norm2();"),
      25);
}

TEST(Interp, InstanceOfAndIn) {
  EXPECT_DOUBLE_EQ(
      run_number("function A() {}\n"
                 "var a = new A();\n"
                 "var result = (a instanceof A ? 1 : 0) + ('x' in {x: 1} ? 1 : 0) + (0 in [7] ? 1 : 0);"),
      3);
}

TEST(Interp, DeleteProperty) {
  EXPECT_DOUBLE_EQ(run_number("var o = {x: 1};\n"
                              "delete o.x;\n"
                              "var result = ('x' in o) ? 1 : 0;"),
                   0);
}

TEST(Interp, TypeofOperator) {
  EXPECT_EQ(run_string("var result = typeof 1;"), "number");
  EXPECT_EQ(run_string("var result = typeof 'a';"), "string");
  EXPECT_EQ(run_string("var result = typeof undefined;"), "undefined");
  EXPECT_EQ(run_string("var result = typeof {};"), "object");
  EXPECT_EQ(run_string("var result = typeof function () {};"), "function");
  EXPECT_EQ(run_string("var result = typeof not_declared_anywhere;"), "undefined");
}

TEST(Interp, ArraysBasics) {
  EXPECT_DOUBLE_EQ(run_number("var a = [1, 2, 3]; a.push(4); var result = a.length;"), 4);
  EXPECT_DOUBLE_EQ(run_number("var a = [1, 2, 3]; a[10] = 1; var result = a.length;"), 11);
  EXPECT_EQ(run_string("var result = [1, 2, 3].join('-');"), "1-2-3");
  EXPECT_DOUBLE_EQ(run_number("var a = []; a.length = 5; var result = a.length;"), 5);
}

TEST(Interp, ArrayFunctionalOperators) {
  EXPECT_DOUBLE_EQ(
      run_number("var result = [1, 2, 3].map(function (x) { return x * 2; })\n"
                 "  .reduce(function (a, b) { return a + b; }, 0);"),
      12);
  EXPECT_DOUBLE_EQ(
      run_number("var result = [1, 2, 3, 4].filter(function (x) { return x % 2 === 0; }).length;"),
      2);
  EXPECT_DOUBLE_EQ(
      run_number("var result = ([1, 2].every(function (x) { return x > 0; }) ? 1 : 0) +\n"
                 "  ([1, 2].some(function (x) { return x > 1; }) ? 1 : 0);"),
      2);
}

TEST(Interp, ForEachGetsFreshScope) {
  // The forEach rewrite of the paper's Fig. 6: each callback invocation has
  // a private `p`.
  EXPECT_DOUBLE_EQ(
      run_number("var fns = [];\n"
                 "[0, 1, 2].forEach(function (i) { var p = i; fns.push(function () { return p; }); });\n"
                 "var result = fns[0]() + fns[1]() + fns[2]();"),
      3);  // 0 + 1 + 2, unlike the var-scoped loop version
}

TEST(Interp, ArraySortWithComparator) {
  EXPECT_EQ(run_string("var a = [3, 1, 2];\n"
                       "a.sort(function (x, y) { return x - y; });\n"
                       "var result = a.join('');"),
            "123");
}

TEST(Interp, ArraySliceSpliceConcat) {
  EXPECT_EQ(run_string("var result = [1, 2, 3, 4].slice(1, 3).join('');"), "23");
  EXPECT_EQ(run_string("var a = [1, 2, 3, 4]; a.splice(1, 2); var result = a.join('');"), "14");
  EXPECT_EQ(run_string("var result = [1].concat([2, 3], 4).join('');"), "1234");
}

TEST(Interp, StringMethods) {
  EXPECT_DOUBLE_EQ(run_number("var result = 'hello'.length;"), 5);
  EXPECT_EQ(run_string("var result = 'hello'.charAt(1);"), "e");
  EXPECT_DOUBLE_EQ(run_number("var result = 'abc'.charCodeAt(0);"), 97);
  EXPECT_EQ(run_string("var result = 'a,b,c'.split(',').join('|');"), "a|b|c");
  EXPECT_EQ(run_string("var result = 'Hello'.toUpperCase();"), "HELLO");
  EXPECT_EQ(run_string("var result = 'hello'.substring(1, 3);"), "el");
  EXPECT_EQ(run_string("var result = '  x '.trim();"), "x");
  EXPECT_EQ(run_string("var result = 'aXbXc'.replace('X', '-');"), "a-bXc");
  EXPECT_EQ(run_string("var result = String.fromCharCode(104, 105);"), "hi");
}

TEST(Interp, MathBuiltins) {
  EXPECT_DOUBLE_EQ(run_number("var result = Math.max(1, 7, 3) + Math.min(2, -1);"), 6);
  EXPECT_DOUBLE_EQ(run_number("var result = Math.sqrt(16);"), 4);
  EXPECT_DOUBLE_EQ(run_number("var result = Math.floor(2.7) + Math.ceil(2.1) + Math.round(2.5);"), 8);
  EXPECT_DOUBLE_EQ(run_number("var result = Math.abs(-3);"), 3);
  EXPECT_DOUBLE_EQ(run_number("var result = Math.pow(2, 10);"), 1024);
}

TEST(Interp, MathRandomIsSeededAndDeterministic) {
  const double a = run_number("var result = Math.random();");
  const double b = run_number("var result = Math.random();");
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_GE(a, 0.0);
  EXPECT_LT(a, 1.0);
}

TEST(Interp, GlobalFunctions) {
  EXPECT_DOUBLE_EQ(run_number("var result = parseInt('42');"), 42);
  EXPECT_DOUBLE_EQ(run_number("var result = parseFloat('2.5px');"), 2.5);
  EXPECT_DOUBLE_EQ(run_number("var result = isNaN('zz') ? 1 : 0;"), 1);
  EXPECT_DOUBLE_EQ(run_number("var result = Number('3') + Number(true);"), 4);
}

TEST(Interp, ObjectKeys) {
  EXPECT_EQ(run_string("var result = Object.keys({b: 1, a: 2}).join('');"), "ba");
}

TEST(Interp, FunctionCallApply) {
  EXPECT_DOUBLE_EQ(
      run_number("function add(a, b) { return this.base + a + b; }\n"
                 "var result = add.call({base: 10}, 1, 2) + add.apply({base: 100}, [1, 2]);"),
      13 + 103);
}

TEST(Interp, TryCatchThrow) {
  EXPECT_EQ(run_string("var result = '';\n"
                       "try { throw {name: 'E', message: 'boom'}; }\n"
                       "catch (e) { result = e.message; }"),
            "boom");
}

TEST(Interp, FinallyRuns) {
  EXPECT_DOUBLE_EQ(run_number("var result = 0;\n"
                              "try { result = 1; } finally { result += 10; }"),
                   11);
}

TEST(Interp, UncaughtThrowBecomesEngineError) {
  js::Program program = js::parse("throw {name: 'E', message: 'x'};");
  VirtualClock clock;
  Interpreter interp(program, clock);
  EXPECT_THROW(interp.run(), EngineError);
}

TEST(Interp, TypeErrorOnCallingNonFunction) {
  js::Program program = js::parse("var x = 1; x();");
  VirtualClock clock;
  Interpreter interp(program, clock);
  EXPECT_THROW(interp.run(), EngineError);
}

TEST(Interp, ReferenceErrorOnUnknownRead) {
  js::Program program = js::parse("var y = nope + 1;");
  VirtualClock clock;
  Interpreter interp(program, clock);
  EXPECT_THROW(interp.run(), EngineError);
}

TEST(Interp, AssignToUndeclaredCreatesGlobal) {
  EXPECT_DOUBLE_EQ(run_number("function f() { leaked = 7; }\n"
                              "f();\n"
                              "var result = leaked;"),
                   7);
}

TEST(Interp, RecursionDepthLimited) {
  js::Program program = js::parse("function f() { return f(); } f();");
  VirtualClock clock;
  Interpreter interp(program, clock);
  EXPECT_THROW(interp.run(), EngineError);
}

TEST(Interp, TickBudgetStopsRunawayLoop) {
  js::Program program = js::parse("while (true) { }");
  VirtualClock clock;
  Interpreter::Config config;
  config.max_ticks = 10000;
  Interpreter interp(program, clock, nullptr, config);
  EXPECT_THROW(interp.run(), EngineError);
}

TEST(Interp, ClockAdvancesWithWork) {
  js::Program program = js::parse("var s = 0; for (var i = 0; i < 1000; i++) { s += i; }");
  VirtualClock clock;
  Interpreter interp(program, clock);
  interp.run();
  EXPECT_GT(clock.cpu_ns(), 0);
  EXPECT_EQ(clock.cpu_ns(), clock.wall_ns());
}

TEST(Interp, ConsoleLogCapture) {
  js::Program program = js::parse("console.log('a', 1, [1, 2]);");
  VirtualClock clock;
  Interpreter interp(program, clock);
  interp.run();
  EXPECT_EQ(interp.console_output(), "a 1 1,2\n");
}

TEST(Interp, CompoundAssignments) {
  EXPECT_DOUBLE_EQ(run_number("var x = 10; x += 5; x -= 3; x *= 2; x /= 4; var result = x;"), 6);
  EXPECT_DOUBLE_EQ(run_number("var x = 7; x %= 4; var result = x;"), 3);
  EXPECT_DOUBLE_EQ(run_number("var x = 5; x &= 3; x |= 8; x ^= 1; var result = x;"), 8);
  EXPECT_DOUBLE_EQ(run_number("var o = {n: 1}; o.n += 2; var result = o.n;"), 3);
}

TEST(Interp, UpdateExpressions) {
  EXPECT_DOUBLE_EQ(run_number("var i = 5; var a = i++; var result = a * 10 + i;"), 56);
  EXPECT_DOUBLE_EQ(run_number("var i = 5; var a = ++i; var result = a * 10 + i;"), 66);
  EXPECT_DOUBLE_EQ(run_number("var o = {n: 1}; o.n++; ++o.n; var result = o.n;"), 3);
  EXPECT_DOUBLE_EQ(run_number("var a = [1]; a[0]--; var result = a[0];"), 0);
}

TEST(Interp, ConditionalExpression) {
  EXPECT_EQ(run_string("var result = 1 < 2 ? 'y' : 'n';"), "y");
}

TEST(Interp, NumberFormatting) {
  EXPECT_EQ(run_string("var result = '' + 42;"), "42");
  EXPECT_EQ(run_string("var result = '' + 2.5;"), "2.5");
  EXPECT_EQ(run_string("var result = '' + (1 / 0);"), "Infinity");
  EXPECT_EQ(run_string("var result = (3.14159).toFixed(2);"), "3.14");
}

TEST(Interp, JsonStringify) {
  EXPECT_EQ(run_string("var result = JSON.stringify({a: [1, 'x'], b: true});"),
            R"({"a":[1,"x"],"b":true})");
}

TEST(Interp, HoistedFunctionsCallableBeforeDefinition) {
  EXPECT_DOUBLE_EQ(run_number("var result = f();\nfunction f() { return 9; }"), 9);
}

TEST(Interp, SequenceExpression) {
  EXPECT_DOUBLE_EQ(run_number("var i, j; for (i = 0, j = 10; i < 3; i++, j--) { } var result = j;"), 7);
}

TEST(Interp, PerformanceNowReadsVirtualClock) {
  EXPECT_GT(run_number("for (var i = 0; i < 100; i++) { }\nvar result = performance.now();"), 0);
}

// ---------------------------------------------------------------------------
// String interning semantics: a runtime-concatenated string must behave
// exactly like the interned literal spelling the same text (the atom table
// is an engine optimization, not an observable identity).
// ---------------------------------------------------------------------------

TEST(Interning, ConcatenatedStringEqualsLiteral) {
  EXPECT_DOUBLE_EQ(run_number("var lit = 'hello';\n"
                              "var dyn = 'hel' + 'lo';\n"
                              "var result = (lit == dyn ? 1 : 0) + (lit === dyn ? 2 : 0);"),
                   3);
}

TEST(Interning, TypeofSameForInternedAndComputedStrings) {
  EXPECT_EQ(run_string("var result = typeof ('a' + 'b');"), "string");
  EXPECT_EQ(run_string("var s = 'x'; var result = typeof s.charAt(0);"), "string");
}

TEST(Interning, ComputedKeyReachesLiteralKeyProperty) {
  // The property was stored under the interned atom "ab"; the computed key
  // is a runtime concatenation that must hash to the same binding.
  EXPECT_DOUBLE_EQ(run_number("var o = {ab: 41};\n"
                              "o['a' + 'b'] = o['a' + 'b'] + 1;\n"
                              "var result = o.ab;"),
                   42);
}

TEST(Interning, LiteralKeyReachesComputedKeyProperty) {
  // Reverse direction: stored under a computed (runtime) string, read via
  // the non-computed inline-cached path.
  EXPECT_DOUBLE_EQ(run_number("var o = {};\n"
                              "o['k' + 'ey'] = 7;\n"
                              "var result = o.key;"),
                   7);
}

TEST(Interning, NumericLiteralKeysKeepTheirSpelling) {
  EXPECT_DOUBLE_EQ(run_number("var o = {1: 'x', 42: 7};\n"
                              "var result = o[42] + (o[1] === 'x' ? 1 : 0) + (o['1'] === 'x' ? 2 : 0);"),
                   10);
  EXPECT_EQ(run_string("var o = {7: 'a'};\nvar ks = '';\nfor (var k in o) { ks += k; }\nvar result = ks;"),
            "7");
}

TEST(Interning, NeverInternedKeyReadsUndefined) {
  EXPECT_EQ(run_string("var o = {a: 1};\n"
                       "var result = typeof o['zz' + 'q9'];"),
            "undefined");
}

TEST(Interning, StringComparisonIsTextualNotIdentity) {
  EXPECT_DOUBLE_EQ(run_number("var a = 'xy';\n"
                              "var b = 'x' + 'y';\n"
                              "var c = 'xz';\n"
                              "var result = (a === b ? 1 : 0) + (a < c ? 10 : 0) + (b < c ? 100 : 0);"),
                   111);
}

// ---------------------------------------------------------------------------
// Slot-resolved variable access: closure and shadowing corners that stress
// the static (hops, slot) annotation against the runtime environment chain.
// ---------------------------------------------------------------------------

TEST(SlotResolution, ParamShadowsOuterVar) {
  EXPECT_DOUBLE_EQ(run_number("var x = 1;\n"
                              "function f(x) { return x * 10; }\n"
                              "var result = f(2) + x;"),
                   21);
}

TEST(SlotResolution, InnerVarShadowsOuterAcrossTwoLevels) {
  EXPECT_DOUBLE_EQ(
      run_number("var v = 1;\n"
                 "function outer() {\n"
                 "  var v = 2;\n"
                 "  function mid() {\n"
                 "    function inner() { return v; }\n"  // two hops to outer's v
                 "    return inner();\n"
                 "  }\n"
                 "  return mid();\n"
                 "}\n"
                 "var result = outer() * 10 + v;"),
      21);
}

TEST(SlotResolution, SiblingClosuresShareOneBinding) {
  EXPECT_DOUBLE_EQ(
      run_number("function make() {\n"
                 "  var n = 0;\n"
                 "  return [function () { n += 1; return n; },\n"
                 "          function () { n += 10; return n; }];\n"
                 "}\n"
                 "var fns = make();\n"
                 "fns[0]();\n"
                 "fns[1]();\n"
                 "var result = fns[0]();"),
      12);
}

TEST(SlotResolution, SeparateCallsGetSeparateSlots) {
  EXPECT_DOUBLE_EQ(
      run_number("function make(start) {\n"
                 "  return function () { start += 1; return start; };\n"
                 "}\n"
                 "var a = make(0);\n"
                 "var b = make(100);\n"
                 "a(); b();\n"
                 "var result = a() + b();"),
      2 + 102);
}

TEST(SlotResolution, DuplicateParamAndVarShareSlot) {
  // `var x` re-declares the parameter: one binding, initializer overwrites.
  EXPECT_DOUBLE_EQ(run_number("function f(x) { var x = 5; return x; }\n"
                              "var result = f(3);"),
                   5);
}

TEST(SlotResolution, CatchScopeShadowsAndUnwinds) {
  EXPECT_DOUBLE_EQ(
      run_number("function f() {\n"
                 "  var e = 1;\n"
                 "  var seen = 0;\n"
                 "  try { throw {message: 9}; } catch (e) { seen = e.message; }\n"
                 "  return e * 100 + seen;\n"
                 "}\n"
                 "var result = f();"),
      109);
}

TEST(SlotResolution, ClosureCreatedInsideCatchSeesCatchParam) {
  EXPECT_DOUBLE_EQ(
      run_number("var f;\n"
                 "try { throw {v: 7}; } catch (err) { f = function () { return err.v; }; }\n"
                 "var result = f();"),
      7);
}

TEST(SlotResolution, HoistedFunctionInsideCatchIgnoresCatchScope) {
  // Function *declarations* are hoisted to function scope and close over the
  // function-entry environment, not the catch environment.
  EXPECT_DOUBLE_EQ(
      run_number("function f() {\n"
                 "  var g;\n"
                 "  var x = 3;\n"
                 "  try { throw {}; } catch (x) { g = h; }\n"
                 "  function h() { return x; }\n"
                 "  return g();\n"
                 "}\n"
                 "var result = f();"),
      3);
}

TEST(SlotResolution, GlobalCreatedAfterFirstMissIsFound) {
  // The per-site global cache must not pin a "not defined" verdict: the
  // binding appears between two executions of the same read site.
  EXPECT_DOUBLE_EQ(run_number("function get() { return typeof later === 'undefined' ? 0 : later; }\n"
                              "var first = get();\n"
                              "later = 42;\n"
                              "var result = first + get();"),
                   42);
}

TEST(SlotResolution, RecursionStacksIndependentSlots) {
  EXPECT_DOUBLE_EQ(
      run_number("function fact(n) {\n"
                 "  var local = n * 10;\n"
                 "  if (n <= 1) { return 1; }\n"
                 "  var r = n * fact(n - 1);\n"
                 "  return r + (local - n * 10);\n"  // local must be per-activation
                 "}\n"
                 "var result = fact(5);"),
      120);
}

}  // namespace
}  // namespace jsceres::interp
