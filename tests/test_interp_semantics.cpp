// Deeper engine-semantics coverage: coercion tables, prototype chains,
// scoping corners, and the instrumentation-facing behaviours (host-object
// category reporting, provenance of property accesses).
#include <gtest/gtest.h>

#include "interp/interpreter.h"
#include "js/parser.h"

namespace jsceres::interp {
namespace {

struct EngineRun {
  explicit EngineRun(const std::string& source, ExecutionHooks* hooks = nullptr)
      : program(js::parse(source)), interp(program, clock, hooks) {
    interp.run();
  }
  Value global(const std::string& name) { return interp.global(name); }

  js::Program program;
  VirtualClock clock;
  Interpreter interp;
};

double num(const std::string& source) {
  EngineRun run(source);
  const Value v = run.global("result");
  EXPECT_TRUE(v.is_number());
  return v.as_number();
}

std::string str_result(const std::string& source) {
  EngineRun run(source);
  const Value v = run.global("result");
  EXPECT_TRUE(v.is_string());
  return v.as_string();
}

// ---------------------------------------------------------------------------
// Coercions
// ---------------------------------------------------------------------------

struct CoercionCase {
  const char* expr;
  const char* expected;
};

class CoercionTable : public ::testing::TestWithParam<CoercionCase> {};

TEST_P(CoercionTable, StringifiesLikeJavaScript) {
  const auto& param = GetParam();
  EXPECT_EQ(str_result(std::string("var result = '' + (") + param.expr + ");"),
            param.expected)
      << param.expr;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CoercionTable,
    ::testing::Values(CoercionCase{"1 + '2'", "12"},
                      CoercionCase{"'3' * '4'", "12"},
                      CoercionCase{"true + true", "2"},
                      CoercionCase{"null + 1", "1"},
                      CoercionCase{"undefined + 1", "NaN"},
                      CoercionCase{"[1, 2] + ''", "1,2"},
                      CoercionCase{"({}) + ''", "[object Object]"},
                      CoercionCase{"0 / 0", "NaN"},
                      CoercionCase{"1 / 0", "Infinity"},
                      CoercionCase{"-1 / 0", "-Infinity"},
                      CoercionCase{"'5' - 2", "3"},
                      CoercionCase{"!'nonempty'", "false"},
                      CoercionCase{"!''", "true"},
                      CoercionCase{"' 42 ' * 1", "42"},
                      CoercionCase{"'x' * 1", "NaN"}));

TEST(Semantics, TruthinessTable) {
  EXPECT_DOUBLE_EQ(num("var result = (0 ? 1 : 0) + ('' ? 1 : 0) + (null ? 1 : 0) + "
                       "(undefined ? 1 : 0) + (NaN ? 1 : 0);"),
                   0);
  EXPECT_DOUBLE_EQ(num("var result = (1 ? 1 : 0) + ('a' ? 1 : 0) + ([] ? 1 : 0) + "
                       "(({}) ? 1 : 0) + (-1 ? 1 : 0);"),
                   5);
}

TEST(Semantics, LooseVsStrictEqualityMatrix) {
  EXPECT_DOUBLE_EQ(num("var result = (0 == '') + (0 == '0') + ('' == '0') * 10;"),
                   2);  // '' == '0' is false
  EXPECT_DOUBLE_EQ(num("var result = (null == undefined) + (null === undefined) * 10;"), 1);
  EXPECT_DOUBLE_EQ(num("var result = (1 == true) + (1 === true) * 10;"), 1);
}

// ---------------------------------------------------------------------------
// Prototype chains and constructors
// ---------------------------------------------------------------------------

TEST(Semantics, PrototypeChainLookupOrder) {
  EXPECT_DOUBLE_EQ(
      num("function A() {}\n"
          "A.prototype.v = 1;\n"
          "var a = new A();\n"
          "var before = a.v;\n"
          "a.v = 2;\n"  // own property shadows the prototype
          "var result = before * 10 + a.v;"),
      12);
}

TEST(Semantics, PrototypeUpdatesAreLive) {
  EXPECT_DOUBLE_EQ(
      num("function A() {}\n"
          "var a = new A();\n"
          "A.prototype.f = function () { return 7; };\n"  // after construction
          "var result = a.f();"),
      7);
}

TEST(Semantics, ConstructorReturningObjectOverridesThis) {
  EXPECT_DOUBLE_EQ(num("function F() { this.x = 1; return {x: 99}; }\n"
                       "var result = new F().x;"),
                   99);
  EXPECT_DOUBLE_EQ(num("function G() { this.x = 1; return 42; }\n"
                       "var result = new G().x;"),
                   1);  // primitive return is ignored
}

TEST(Semantics, InstanceofFollowsChain) {
  EXPECT_DOUBLE_EQ(
      num("function Base() {}\n"
          "function Derived() {}\n"
          "Derived.prototype = new Base();\n"
          "var d = new Derived();\n"
          "var result = (d instanceof Derived ? 1 : 0) + (d instanceof Base ? 2 : 0);"),
      3);
}

TEST(Semantics, MethodThisBinding) {
  EXPECT_DOUBLE_EQ(num("var counter = {n: 5, bump: function () { this.n++; return this.n; }};\n"
                       "counter.bump();\n"
                       "var result = counter.bump();"),
                   7);
}

TEST(Semantics, DetachedMethodLosesThis) {
  // Calling a detached method gives this === undefined; our engine returns
  // undefined member reads as TypeError on property set — here we only read.
  EngineRun run("var o = {n: 3, get: function () { return this; }};\n"
          "var f = o.get;\n"
          "var result = f() === undefined ? 'lost' : 'kept';");
  EXPECT_EQ(run.global("result").as_string(), "lost");
}

// ---------------------------------------------------------------------------
// Scoping corners
// ---------------------------------------------------------------------------

TEST(Semantics, VarHoistingReadsUndefined) {
  EXPECT_EQ(str_result("var result = typeof x;\nvar x = 1;"), "undefined");
}

TEST(Semantics, FunctionScopingSharesLoopVariable) {
  // The study's central JS quirk once more, through closures in an array.
  EXPECT_DOUBLE_EQ(num("var fs = [];\n"
                       "for (var i = 0; i < 3; i++) { fs.push(function () { return i; }); }\n"
                       "var result = fs[0]() + fs[1]() + fs[2]();"),
                   9);
}

TEST(Semantics, IifePrivatizes) {
  EXPECT_DOUBLE_EQ(
      num("var fs = [];\n"
          "for (var i = 0; i < 3; i++) {\n"
          "  (function (j) { fs.push(function () { return j; }); })(i);\n"
          "}\n"
          "var result = fs[0]() + fs[1]() + fs[2]();"),
      3);
}

TEST(Semantics, CatchParameterIsBlockScoped) {
  EXPECT_EQ(str_result("var e = 'outer';\n"
                       "try { throw {message: 'inner'}; } catch (e) { }\n"
                       "var result = e;"),
            "outer");
}

TEST(Semantics, NestedFunctionSeesEnclosingScope) {
  EXPECT_DOUBLE_EQ(num("function outer() {\n"
                       "  var secret = 21;\n"
                       "  function inner() { return secret * 2; }\n"
                       "  return inner();\n"
                       "}\n"
                       "var result = outer();"),
                   42);
}

// ---------------------------------------------------------------------------
// Arrays: holes, growth, length interplay
// ---------------------------------------------------------------------------

TEST(Semantics, SparseWriteFillsWithUndefined) {
  EXPECT_EQ(str_result("var a = [];\n"
                       "a[3] = 'x';\n"
                       "var result = typeof a[1] + ':' + a.length;"),
            "undefined:4");
}

TEST(Semantics, LengthTruncates) {
  EXPECT_EQ(str_result("var a = [1, 2, 3, 4];\n"
                       "a.length = 2;\n"
                       "var result = a.join(',');"),
            "1,2");
}

TEST(Semantics, NegativeSliceIndices) {
  EXPECT_EQ(str_result("var result = [1, 2, 3, 4, 5].slice(-3, -1).join('');"), "34");
}

TEST(Semantics, ReduceWithoutInitialValue) {
  EXPECT_DOUBLE_EQ(num("var result = [2, 3, 4].reduce(function (a, b) { return a * b; });"),
                   24);
}

TEST(Semantics, MapIndexArgument) {
  EXPECT_EQ(str_result("var result = ['a', 'b'].map(function (v, i) { return v + i; }).join(',');"),
            "a0,b1");
}

// ---------------------------------------------------------------------------
// Hook-facing behaviour
// ---------------------------------------------------------------------------

class CountingHooks final : public ExecutionHooks {
 public:
  [[nodiscard]] bool wants_memory_events() const override { return true; }
  void on_var_write(std::uint64_t, js::Atom name, int) override {
    ++var_writes[name];
  }
  void on_prop_write(std::uint64_t, js::Atom key, int,
                     const BaseProvenance& base) override {
    ++prop_writes[key.str()];
    last_base = base.kind;
  }
  void on_object_created(std::uint64_t, int) override { ++objects; }
  std::map<std::string, int> var_writes;
  std::map<std::string, int> prop_writes;
  BaseProvenance::Kind last_base = BaseProvenance::Kind::Object;
  int objects = 0;
};

TEST(Hooks, VarWritesReported) {
  CountingHooks hooks;
  EngineRun run("var x = 1;\nx = 2;\nx += 3;\nx++;", &hooks);
  EXPECT_EQ(hooks.var_writes["x"], 4);
}

TEST(Hooks, PropertyWriteProvenanceIsBindingForIdents) {
  CountingHooks hooks;
  EngineRun run("var o = {};\no.f = 1;", &hooks);
  EXPECT_EQ(hooks.prop_writes["f"], 1);
  EXPECT_EQ(hooks.last_base, BaseProvenance::Kind::Binding);
}

TEST(Hooks, PropertyWriteProvenanceIsThisInConstructors) {
  CountingHooks hooks;
  EngineRun run("function C() { this.v = 1; }\nnew C();", &hooks);
  EXPECT_EQ(hooks.prop_writes["v"], 1);
  EXPECT_EQ(hooks.last_base, BaseProvenance::Kind::This);
}

TEST(Hooks, ObjectCreationCounted) {
  CountingHooks hooks;
  EngineRun run("var a = {};\nvar b = [];\nvar c = new Object();\n"
          "function f() {}\nvar d = f;",
          &hooks);
  // {}, [], new Object's allocation, the function object f (plus its
  // prototype object is created without a hook through make_object? no —
  // it goes through the ctor path). At minimum the three literals exist.
  EXPECT_GE(hooks.objects, 3);
}

// ---------------------------------------------------------------------------
// Shape / inline-cache behaviour: the caches must be invisible — polymorphic
// sites, prototype mutation and delete (dictionary mode) all stay correct.
// ---------------------------------------------------------------------------

TEST(Shapes, PolymorphicSiteReadsBothLayouts) {
  // Same access site sees two different shapes ({a,b} and {b,a}): the
  // monomorphic cache must miss-and-refill, never serve the wrong slot.
  EXPECT_DOUBLE_EQ(num("var p = {a: 1, b: 2};\n"
                       "var q = {b: 30, a: 40};\n"
                       "var s = 0;\n"
                       "var list = [p, q, p, q];\n"
                       "for (var i = 0; i < 4; i++) { s += list[i].a; }\n"
                       "var result = s;"),
                   1 + 40 + 1 + 40);
}

TEST(Shapes, DeleteDropsToDictionaryModeCorrectly) {
  EXPECT_EQ(str_result("var o = {a: 1, b: 2, c: 3};\n"
                       "var before = o.b;\n"
                       "delete o.b;\n"
                       "o.d = 4;\n"
                       "var keys = '';\n"
                       "for (var k in o) { keys += k; }\n"
                       "var result = before + ':' + keys + ':' + (o.b === undefined);"),
            "2:acd:true");
}

TEST(Shapes, CachedSiteSeesPropertyOverwrite) {
  EXPECT_DOUBLE_EQ(num("var o = {v: 1};\n"
                       "var s = 0;\n"
                       "for (var i = 0; i < 3; i++) { s += o.v; o.v = o.v + 1; }\n"
                       "var result = s;"),
                   1 + 2 + 3);
}

TEST(Shapes, PrototypeMethodAddedAfterCacheWarmup) {
  // Warm the site on own properties, then shadow via the prototype chain's
  // live updates — the holder-shape check must catch the change.
  EXPECT_DOUBLE_EQ(num("function C() { this.x = 1; }\n"
                       "C.prototype.get = function () { return 10; };\n"
                       "var o = new C();\n"
                       "var a = o.get();\n"          // proto hit, cache fills
                       "C.prototype.get = function () { return 20; };\n"
                       "var b = o.get();\n"          // same shape, new holder value
                       "o.get = function () { return 30; };\n"
                       "var c = o.get();\n"          // own property now shadows
                       "var result = a + b + c;"),
                   10 + 20 + 30);
}

TEST(Shapes, SameLiteralShapeSharedAcrossObjects) {
  // Many objects from one literal site: the site stays monomorphic, and all
  // reads stay per-object.
  EXPECT_DOUBLE_EQ(num("var total = 0;\n"
                       "for (var i = 0; i < 16; i++) {\n"
                       "  var o = {idx: i, sq: i * i};\n"
                       "  total += o.sq - o.idx;\n"
                       "}\n"
                       "var result = total;"),
                   [] {
                     double t = 0;
                     for (int i = 0; i < 16; ++i) t += i * i - i;
                     return t;
                   }());
}

TEST(Hooks, ArrayPushReportsElementWrite) {
  CountingHooks hooks;
  EngineRun run("var a = [];\na.push(7);\na.push(8);", &hooks);
  EXPECT_EQ(hooks.prop_writes["0"], 1);
  EXPECT_EQ(hooks.prop_writes["1"], 1);
}

}  // namespace
}  // namespace jsceres::interp
