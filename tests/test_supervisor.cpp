// SessionSupervisor: sibling isolation under failure, the mode-3 -> 1 -> 0
// degradation ladder, deadlines, sticky external cancellation, retry of
// injected scheduler faults, the parametric fault-injection sweep of the
// acceptance criteria, and structured outcomes for the hostile suite. This
// binary runs under the TSan and ASan CI jobs.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "fuzz/oracles.h"
#include "interp/interpreter.h"
#include "js/parser.h"
#include "rivertrail/fault_injection.h"
#include "rivertrail/parallel_for.h"
#include "rivertrail/thread_pool.h"
#include "support/cancel.h"
#include "support/clock.h"
#include "support/supervisor.h"
#include "workloads/runner.h"

namespace jsceres {
namespace {

namespace sched_faults = rivertrail::sched_faults;

/// Process-global injection state must never leak between tests.
struct DisarmGuard {
  ~DisarmGuard() { sched_faults::disarm(); }
};

SessionRequest simple_request(std::string name, std::string source) {
  SessionRequest request;
  request.name = std::move(name);
  request.source = std::move(source);
  return request;
}

TEST(Supervisor, WellBehavedSessionsCompleteAtRequestedMode) {
  rivertrail::ThreadPool pool(4);
  SessionSupervisor supervisor(pool);
  std::vector<SessionRequest> requests;
  for (int i = 0; i < 6; ++i) {
    requests.push_back(simple_request(
        "good-" + std::to_string(i),
        "var s = 0; for (var j = 0; j < 100; j = j + 1) { s = s + j; }"
        "console.log(s + " + std::to_string(i) + ");"));
  }
  const std::vector<SessionOutcome> outcomes = supervisor.run(requests);
  ASSERT_EQ(outcomes.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(outcomes[i].state, SessionState::Completed) << outcomes[i].error;
    EXPECT_EQ(outcomes[i].final_mode, 3);
    EXPECT_EQ(outcomes[i].attempts, 1);
    EXPECT_EQ(outcomes[i].console, std::to_string(4950 + i) + "\n");
    EXPECT_FALSE(outcomes[i].runtime_fault);
  }
}

TEST(Supervisor, HostileSessionCannotTakeDownSiblings) {
  rivertrail::ThreadPool pool(4);
  SessionSupervisor supervisor(pool);
  std::vector<SessionRequest> requests;
  // Sessions 0/2/4 are good; 1 is an allocation bomb under a tight memory
  // ceiling, 3 a runaway loop under a tick budget. Both exhaust every rung
  // of the ladder (the trip is mode-independent), so they quarantine — and
  // the blame is the input's, not the runtime's.
  for (int i = 0; i < 5; ++i) {
    if (i % 2 == 0) {
      requests.push_back(
          simple_request("good-" + std::to_string(i), "console.log(6 * 7);"));
    } else if (i == 1) {
      SessionRequest bomb = simple_request(
          "alloc-bomb", "var a = []; while (true) { a.push(a.length); }");
      bomb.limits.max_memory_bytes = 4u << 20;
      requests.push_back(std::move(bomb));
    } else {
      SessionRequest runaway =
          simple_request("runaway", "var x = 0; while (true) { x = x + 1; }");
      runaway.max_ticks = 500'000;
      requests.push_back(std::move(runaway));
    }
  }
  const std::vector<SessionOutcome> outcomes = supervisor.run(requests);
  ASSERT_EQ(outcomes.size(), 5u);
  for (int i = 0; i < 5; i += 2) {
    EXPECT_EQ(outcomes[i].state, SessionState::Completed) << outcomes[i].error;
    EXPECT_EQ(outcomes[i].console, "42\n");
  }
  for (int i = 1; i < 5; i += 2) {
    EXPECT_EQ(outcomes[i].state, SessionState::Quarantined);
    EXPECT_FALSE(outcomes[i].runtime_fault);  // the input is to blame
    EXPECT_EQ(outcomes[i].attempts, 3);       // rungs 3, 1, 0 all tried
    EXPECT_EQ(outcomes[i].history.back().mode, 0);
    EXPECT_EQ(outcomes[i].history.back().outcome, "limit");
  }
}

TEST(Supervisor, DegradationLadderAnswersFromALowerMode) {
  // Calibrate: the dependence analyzer's stamp arenas charge the run's
  // ledger, so mode 3 peaks strictly above mode 0 on an array-heavy
  // program. A ceiling between the two peaks trips mode 3 but lets a lower
  // rung finish — the supervisor must return Degraded, not Quarantined.
  const std::string source =
      "var a = []; var s = 0;"
      "for (var i = 0; i < 1500; i = i + 1) { a[i] = i; }"
      "for (var j = 0; j < 1500; j = j + 1) { s = s + a[j]; }"
      "console.log(s);";
  const js::Program program = js::parse(source, "<calibrate>");
  std::size_t peak_mode0 = 0;
  std::size_t peak_mode3 = 0;
  {
    VirtualClock clock;
    interp::Interpreter interp(program, clock, nullptr);
    interp.run();
    peak_mode0 = interp.ledger().peak();
  }
  {
    ceres::DependenceAnalyzer analyzer(program);
    VirtualClock clock;
    interp::Interpreter interp(program, clock, &analyzer);
    interp.run();
    peak_mode3 = interp.ledger().peak();
  }
  ASSERT_GT(peak_mode3, peak_mode0);

  rivertrail::ThreadPool pool(2);
  SessionSupervisor supervisor(pool);
  SessionRequest request = simple_request("degrade-me", source);
  request.limits.max_memory_bytes = peak_mode0 + (peak_mode3 - peak_mode0) / 2;
  const SessionOutcome outcome = supervisor.run({request})[0];

  EXPECT_EQ(outcome.state, SessionState::Degraded) << outcome.error;
  EXPECT_LT(outcome.final_mode, 3);
  EXPECT_EQ(outcome.console, "1124250\n");  // the server still answered
  EXPECT_FALSE(outcome.runtime_fault);
  ASSERT_GE(outcome.attempts, 2);
  EXPECT_EQ(outcome.history.front().mode, 3);
  EXPECT_EQ(outcome.history.front().outcome, "limit");
  EXPECT_EQ(outcome.history.back().outcome, "ok");
}

TEST(Supervisor, DeadlineMissedAtEveryRungTimesOut) {
  rivertrail::ThreadPool pool(2);
  SessionSupervisor supervisor(pool);
  SessionRequest request =
      simple_request("spinner", "var x = 0; while (true) { x = x + 1; }");
  request.deadline_ms = 40;  // real wall clock; the tick probe observes it
  const SessionOutcome outcome = supervisor.run({request})[0];

  EXPECT_EQ(outcome.state, SessionState::TimedOut);
  EXPECT_EQ(outcome.attempts, 3);  // each rung got its own fresh deadline
  for (const AttemptRecord& record : outcome.history) {
    EXPECT_EQ(record.outcome, "deadline");
  }
  EXPECT_FALSE(outcome.runtime_fault);
}

TEST(Supervisor, ExternalCancelIsStickyAndEndsTheSessionWithoutRetry) {
  rivertrail::ThreadPool pool(2);
  SessionSupervisor supervisor(pool);

  // Pre-cancelled: the session never even attempts.
  CancelSource pre;
  pre.request_cancel();
  SessionRequest request = simple_request("pre-cancelled", "console.log(1);");
  request.cancel = &pre;
  SessionOutcome outcome = supervisor.run_one(request);
  EXPECT_EQ(outcome.state, SessionState::Cancelled);
  EXPECT_EQ(outcome.attempts, 0);

  // Cancelled mid-run from another thread: one attempt, no retry, no
  // degradation — an explicit cancel survives the supervisor's reset().
  CancelSource mid;
  SessionRequest spinner =
      simple_request("cancel-me", "var x = 0; while (true) { x = x + 1; }");
  spinner.cancel = &mid;
  std::thread canceller([&mid] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    mid.request_cancel();
  });
  outcome = supervisor.run_one(spinner);
  canceller.join();
  EXPECT_EQ(outcome.state, SessionState::Cancelled);
  EXPECT_EQ(outcome.attempts, 1);
  EXPECT_EQ(outcome.history[0].outcome, "cancelled");
}

/// A session whose attempt contains real scheduler work (a parallel_for on
/// the shared pool): the unit the fault injector can hit.
SessionRequest parallel_session(std::string name, rivertrail::ThreadPool& pool) {
  SessionRequest request;
  request.name = std::move(name);
  request.attempt = [&pool](const SessionRequest&, int, const EngineLimits&,
                            std::int64_t, CancelToken token) {
    std::atomic<std::int64_t> sum{0};
    rivertrail::parallel_for(
        pool, 0, 256,
        [&sum](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            sum.fetch_add(i, std::memory_order_relaxed);
          }
        },
        rivertrail::Schedule::Static, 16, token);
    AttemptSuccess success;
    success.console = std::to_string(sum.load());
    return success;
  };
  return request;
}

TEST(Supervisor, InjectedTaskFaultIsRetriedAndHeals) {
  DisarmGuard guard;
  rivertrail::ThreadPool pool(4);
  SessionSupervisor supervisor(pool);
  sched_faults::arm(sched_faults::Kind::TaskThrow, 3);
  const SessionOutcome outcome =
      supervisor.run_one(parallel_session("faulted", pool));
  sched_faults::disarm();

  // The fault fires exactly once; the retry runs clean.
  EXPECT_EQ(outcome.state, SessionState::Completed) << outcome.error;
  EXPECT_EQ(outcome.attempts, 2);
  EXPECT_EQ(outcome.history[0].outcome, "retryable");
  EXPECT_EQ(outcome.history[1].outcome, "ok");
  EXPECT_EQ(outcome.console, std::to_string(255 * 256 / 2));
  EXPECT_FALSE(outcome.runtime_fault);
}

TEST(Supervisor, RetryBudgetExhaustionAtModeZeroFloorQuarantinesAsRuntimeFault) {
  rivertrail::ThreadPool pool(2);
  SessionSupervisor supervisor(pool);

  // Already at the ladder's floor (mode 0) with an attempt that faults every
  // time: the same-mode retry budget is the only recourse, and when it runs
  // out there is no lower rung to fall to.
  SessionRequest request;
  request.name = "floor-faulter";
  request.mode = 0;
  std::atomic<int> calls{0};
  request.attempt = [&calls](const SessionRequest&, int mode, const EngineLimits&,
                             std::int64_t, CancelToken) -> AttemptSuccess {
    EXPECT_EQ(mode, 0);  // never re-asks a higher rung
    calls.fetch_add(1, std::memory_order_relaxed);
    throw sched_faults::InjectedFault("persistent scheduler fault");
  };
  const SessionOutcome outcome = supervisor.run_one(request);

  EXPECT_EQ(outcome.state, SessionState::Quarantined);
  EXPECT_TRUE(outcome.runtime_fault);  // the fault was runtime-side, not input
  EXPECT_EQ(outcome.final_mode, 0);
  // Initial attempt + max_retries same-mode retries, nothing more.
  EXPECT_EQ(outcome.attempts, supervisor.options().max_retries + 1);
  EXPECT_EQ(calls.load(), supervisor.options().max_retries + 1);
  for (const AttemptRecord& record : outcome.history) {
    EXPECT_EQ(record.mode, 0);
    EXPECT_EQ(record.outcome, "retryable");
  }
}

TEST(Supervisor, DeadlineExpiringDuringBackoffDoesNotKillTheRetry) {
  rivertrail::ThreadPool pool(2);
  // Backoff strictly longer than the per-attempt deadline: after the first
  // attempt faults, the deadline armed for that attempt expires while the
  // supervisor sleeps. A deadline expiry is per-attempt state — reset()
  // clears it — so the retry must still run, with a fresh deadline.
  SupervisorOptions options;
  options.backoff_base_ms = 80;
  SessionSupervisor supervisor(pool, options);

  SessionRequest request;
  request.name = "backoff-deadline";
  request.deadline_ms = 20;
  std::atomic<int> calls{0};
  request.attempt = [&calls](const SessionRequest&, int, const EngineLimits&,
                             std::int64_t, CancelToken token) -> AttemptSuccess {
    if (calls.fetch_add(1, std::memory_order_relaxed) == 0) {
      throw sched_faults::InjectedFault("one-shot fault");
    }
    // The retry starts with a clean token: the backoff-window expiry of the
    // previous attempt's deadline must not leak in.
    EXPECT_EQ(token.reason(), CancelReason::None);
    AttemptSuccess success;
    success.console = "recovered";
    return success;
  };
  const SessionOutcome outcome = supervisor.run_one(request);

  EXPECT_EQ(outcome.state, SessionState::Completed) << outcome.error;
  EXPECT_EQ(outcome.attempts, 2);
  EXPECT_EQ(outcome.history[0].outcome, "retryable");
  EXPECT_EQ(outcome.history[1].outcome, "ok");
  EXPECT_EQ(outcome.console, "recovered");
  EXPECT_FALSE(outcome.runtime_fault);
}

TEST(Supervisor, MixedBatchAssignsQuarantineBlameCorrectly) {
  rivertrail::ThreadPool pool(4);
  SessionSupervisor supervisor(pool);

  std::vector<SessionRequest> requests;
  requests.push_back(simple_request("good-a", "console.log(1);"));
  requests.push_back(simple_request("bad-parse", "function ( { ) syntax"));
  // Runtime invariant breakage: fatal on the spot, never retried.
  SessionRequest invariant;
  invariant.name = "invariant-breaker";
  std::atomic<int> invariant_calls{0};
  invariant.attempt = [&invariant_calls](const SessionRequest&, int,
                                         const EngineLimits&, std::int64_t,
                                         CancelToken) -> AttemptSuccess {
    invariant_calls.fetch_add(1, std::memory_order_relaxed);
    throw RuntimeInvariantError("argument stack not unwound");
  };
  requests.push_back(std::move(invariant));
  // Faults on every rung: retries exhaust at mode 3, then the ladder walks
  // 1 and 0 with no budget left — every step one attempt.
  SessionRequest all_rungs;
  all_rungs.name = "faults-everywhere";
  all_rungs.attempt = [](const SessionRequest&, int, const EngineLimits&,
                         std::int64_t, CancelToken) -> AttemptSuccess {
    throw sched_faults::InjectedFault("fault at every rung");
  };
  requests.push_back(std::move(all_rungs));
  requests.push_back(simple_request("good-b", "console.log(2);"));

  const std::vector<SessionOutcome> outcomes = supervisor.run(requests);
  ASSERT_EQ(outcomes.size(), 5u);

  EXPECT_EQ(outcomes[0].state, SessionState::Completed) << outcomes[0].error;
  EXPECT_EQ(outcomes[4].state, SessionState::Completed) << outcomes[4].error;

  // Parse failure: input's fault, one attempt, no ladder walk.
  EXPECT_EQ(outcomes[1].state, SessionState::Quarantined);
  EXPECT_FALSE(outcomes[1].runtime_fault);
  EXPECT_EQ(outcomes[1].attempts, 1);
  EXPECT_EQ(outcomes[1].history[0].outcome, "parse");

  // Broken invariant: runtime's fault, fatal immediately.
  EXPECT_EQ(outcomes[2].state, SessionState::Quarantined);
  EXPECT_TRUE(outcomes[2].runtime_fault);
  EXPECT_EQ(outcomes[2].attempts, 1);
  EXPECT_EQ(invariant_calls.load(), 1);
  EXPECT_EQ(outcomes[2].history[0].outcome, "fatal");

  // Persistent injected fault: (max_retries + 1) attempts at mode 3, then
  // one attempt each at rungs 1 and 0 — all retryable, blamed on the
  // runtime because the fault class is scheduler-side.
  EXPECT_EQ(outcomes[3].state, SessionState::Quarantined);
  EXPECT_TRUE(outcomes[3].runtime_fault);
  EXPECT_EQ(outcomes[3].attempts, supervisor.options().max_retries + 3);
  EXPECT_EQ(outcomes[3].final_mode, 0);
  EXPECT_EQ(outcomes[3].history.front().mode, 3);
  EXPECT_EQ(outcomes[3].history.back().mode, 0);
  for (const AttemptRecord& record : outcomes[3].history) {
    EXPECT_EQ(record.outcome, "retryable");
  }
}

TEST(Supervisor, FaultInjectionSweepLeavesEverySessionTerminalAndPoolReusable) {
  DisarmGuard guard;
  rivertrail::ThreadPool pool(4);
  SessionSupervisor supervisor(pool);
  const std::string expected_sum = std::to_string(255 * 256 / 2);

  // Size the sweep: count the batch's scheduling events without firing.
  {
    sched_faults::arm(sched_faults::Kind::TaskThrow, 1'000'000'000);
    std::vector<SessionRequest> requests;
    for (int i = 0; i < 3; ++i) {
      requests.push_back(parallel_session("size-" + std::to_string(i), pool));
    }
    supervisor.run(requests);
    sched_faults::disarm();
  }
  const std::int64_t events = sched_faults::events_observed();
  ASSERT_GT(events, 0);

  for (const sched_faults::Kind kind :
       {sched_faults::Kind::TaskThrow, sched_faults::Kind::Cancel,
        sched_faults::Kind::DeadlineExpire}) {
    // Cover the first events densely and the tail geometrically: with
    // several sessions racing, the K-th event lands at a different point of
    // a different session every run anyway — the sweep's job is coverage of
    // "a fault at *some* live scheduling event", swept under TSan/ASan.
    for (std::int64_t k = 1; k <= events; k = (k < 16 ? k + 1 : k * 2)) {
      CancelSource victim;  // fresh per run: explicit cancels are sticky
      std::vector<SessionRequest> requests;
      for (int i = 0; i < 3; ++i) {
        requests.push_back(parallel_session("s" + std::to_string(i), pool));
      }
      requests[0].cancel = &victim;
      sched_faults::arm(kind, k, &victim);
      const std::vector<SessionOutcome> outcomes = supervisor.run(requests);
      sched_faults::disarm();

      ASSERT_EQ(outcomes.size(), 3u);
      for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const SessionOutcome& outcome = outcomes[i];
        // Nobody quarantines: a TaskThrow is healed by a retry, a Cancel or
        // DeadlineExpire lands on the victim's source and ends it in an
        // orderly Cancelled/Degraded/TimedOut (or the batch finished first
        // and everyone completed). Siblings of the victim always answer.
        EXPECT_NE(outcome.state, SessionState::Quarantined)
            << "kind=" << int(kind) << " k=" << k << " session=" << i << ": "
            << outcome.error;
        if (outcome.state == SessionState::Completed ||
            outcome.state == SessionState::Degraded) {
          EXPECT_EQ(outcome.console, expected_sum);
        }
        if (i != 0 && kind != sched_faults::Kind::TaskThrow) {
          // Only session 0's source is a fault target; its siblings must
          // complete untouched (TaskThrow is targetless — any session may
          // absorb it, retry, and still complete).
          EXPECT_EQ(outcome.state, SessionState::Completed) << outcome.error;
        }
        EXPECT_FALSE(outcome.runtime_fault);
      }
    }
  }

  // The pool survives the whole sweep: a clean batch completes everywhere.
  std::vector<SessionRequest> clean;
  for (int i = 0; i < 3; ++i) {
    clean.push_back(parallel_session("clean-" + std::to_string(i), pool));
  }
  for (const SessionOutcome& outcome : supervisor.run(clean)) {
    EXPECT_EQ(outcome.state, SessionState::Completed) << outcome.error;
    EXPECT_EQ(outcome.console, expected_sum);
  }
}

TEST(Supervisor, HostileSuiteAlwaysProducesStructuredOutcomes) {
  rivertrail::ThreadPool pool(4);
  SessionSupervisor supervisor(pool);
  std::vector<SessionRequest> requests;
  for (const fuzz::HostileCase& hostile : fuzz::hostile_suite()) {
    SessionRequest request = simple_request(hostile.name, hostile.source);
    request.limits.max_memory_bytes = hostile.max_memory_bytes;
    request.limits.max_array_length = hostile.max_array_length;
    request.limits.max_wall_ms = hostile.max_wall_ms;
    request.max_ticks = hostile.max_ticks;
    requests.push_back(std::move(request));
  }
  const std::vector<SessionOutcome> outcomes = supervisor.run(requests);
  ASSERT_EQ(outcomes.size(), requests.size());
  for (const SessionOutcome& outcome : outcomes) {
    // Every hostile input gets a structured verdict, every quarantine is
    // blamed on the input — the acceptance bar: zero quarantines caused by
    // the runtime itself.
    EXPECT_FALSE(outcome.runtime_fault)
        << outcome.name << ": " << outcome.error;
    EXPECT_FALSE(outcome.history.empty()) << outcome.name;
    for (const AttemptRecord& record : outcome.history) {
      EXPECT_FALSE(record.outcome.empty());
    }
    if (outcome.state == SessionState::Quarantined) {
      EXPECT_FALSE(outcome.error.empty()) << outcome.name;
    }
  }
}

TEST(Supervisor, RunnerIntegrationSupervisesARealWorkload) {
  rivertrail::ThreadPool pool(4);
  // HAAR.js end to end through run_workload's page/canvas/user-event path,
  // under supervision. No limits: it must complete at the requested mode 3.
  const std::vector<SessionOutcome> outcomes =
      workloads::run_workloads_supervised({"HAAR.js"}, pool);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].state, SessionState::Completed) << outcomes[0].error;
  EXPECT_EQ(outcomes[0].final_mode, 3);
  EXPECT_GT(outcomes[0].cpu_ns, 0);
}

}  // namespace
}  // namespace jsceres
