// Differential tests for the hash-consed stamp-tree hot path: the id-based
// characterization (CharStack::characterize_*_id + materialize) must agree
// with the reference vector algebra (characterize_creation/flow) on every
// reachable input, and the analyzer built on it must produce byte-identical
// results to the vector-based semantics.
#include <gtest/gtest.h>

#include <vector>

#include "ceres/char_stack.h"
#include "ceres/dependence_analyzer.h"
#include "interp/interpreter.h"
#include "js/parser.h"
#include "support/rng.h"

namespace jsceres::ceres {
namespace {

/// Replay a random (but well-formed) loop-event schedule on one CharStack,
/// taking both vector snapshots and interned ids at random points, and check
/// the id-based characterization against the reference algebra at every
/// subsequent state.
class StampTreeDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StampTreeDifferential, CreationAndFlowMatchVectorAlgebra) {
  Rng rng(GetParam());
  CharStack stack;
  std::vector<int> open;                 // loop ids, innermost last
  std::vector<Stamp> stamp_vecs;         // reference snapshots
  std::vector<StampId> stamp_ids;        // interned snapshots
  int checked = 0;

  for (int step = 0; step < 4000; ++step) {
    const std::uint64_t action = rng.next_u64() % 10;
    if (action < 3 || open.empty()) {
      // Enter a loop; small id space so recursion (re-entry of an open
      // loop id through "calls") happens regularly.
      const int loop_id = 1 + int(rng.next_u64() % 5);
      stack.on_enter(loop_id);
      open.push_back(loop_id);
    } else if (action < 6) {
      stack.on_iteration(open.back());
    } else if (action < 8) {
      stack.on_exit(open.back());
      open.pop_back();
    } else {
      // Take a snapshot in both representations.
      stamp_vecs.push_back(stack.current());
      stamp_ids.push_back(stack.current_id());
    }
    // Check a rotating subset of the snapshots against the current state.
    for (std::size_t s = step % 7; s < stamp_vecs.size(); s += 7) {
      const Characterization creation_ref =
          characterize_creation(stamp_vecs[s], stack.current());
      const Characterization creation_id =
          stack.materialize(stack.characterize_creation_id(stamp_ids[s]));
      ASSERT_EQ(creation_ref, creation_id) << "creation diverged at step " << step;
      const Characterization flow_ref =
          characterize_flow(stamp_vecs[s], stack.current());
      const Characterization flow_id =
          stack.materialize(stack.characterize_flow_id(stamp_ids[s]));
      ASSERT_EQ(flow_ref, flow_id) << "flow diverged at step " << step;
      ++checked;
    }
  }
  EXPECT_GT(checked, 1000);  // the schedule actually exercised comparisons
}

INSTANTIATE_TEST_SUITE_P(Seeds, StampTreeDifferential,
                         ::testing::Values(1u, 7u, 42u, 1234u, 987654321u));

// ---------------------------------------------------------------------------
// Stamp-tree growth
// ---------------------------------------------------------------------------

TEST(StampTree, UnreferencedStatesAreNeverMaterialized) {
  CharStack stack;
  stack.on_enter(1);
  for (int i = 0; i < 10000; ++i) stack.on_iteration(1);
  stack.on_exit(1);
  // No stamp was ever taken: the tree holds only the root.
  EXPECT_EQ(stack.node_count(), 1u);
}

TEST(StampTree, NodesGrowWithReferencedStatesOnly) {
  CharStack stack;
  stack.on_enter(1);
  for (int i = 0; i < 1000; ++i) {
    stack.on_iteration(1);
    if (i % 100 == 0) stack.current_id();
  }
  stack.on_exit(1);
  // 10 referenced iteration states (single-frame paths) + root.
  EXPECT_EQ(stack.node_count(), 11u);
}

TEST(StampTree, RepeatedStampsOfOneStateShareOneNode) {
  CharStack stack;
  stack.on_enter(3);
  stack.on_iteration(3);
  const StampId first = stack.current_id();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(stack.current_id(), first);
  EXPECT_EQ(stack.node_count(), 2u);  // root + the one referenced state
}

TEST(StampTree, GrowthUnderRecursionIsLinearInReferencedStates) {
  // Recursive loop re-entry (the §3.3 recursion guard case): every entry is
  // a fresh instance, but the tree still only materializes referenced
  // states — one node per stamped frame, sharing the common prefix.
  CharStack stack;
  stack.on_enter(1);
  stack.on_iteration(1);
  stack.current_id();
  for (int depth = 0; depth < 64; ++depth) {
    stack.on_enter(1);  // recursion: loop 1 re-entered while open
    stack.on_iteration(1);
    stack.current_id();
  }
  EXPECT_TRUE(stack.recursive_loops().count(1) > 0);
  // root + 65 stamped frames (one per open depth), not 65 full stack copies.
  EXPECT_EQ(stack.node_count(), 66u);
  for (int depth = 0; depth < 65; ++depth) stack.on_exit(1);
  EXPECT_FALSE(stack.any_open());
}

// ---------------------------------------------------------------------------
// End-to-end differential: analyzer results on real programs
// ---------------------------------------------------------------------------

/// Reference reimplementation of the analyzer's per-warning data using the
/// *vector* algebra, driven from the same run: rendering every recorded
/// warning must round-trip through the reference characterization.
TEST(DependenceDifferential, RecordedCharacterizationsMatchReferenceShape) {
  const char* source = R"JS(
var grid = [];
for (var i0 = 0; i0 < 8; i0++) { grid.push({v: i0, acc: 0}); }
var total = 0;
function relax(rounds) {
  for (var r = 0; r < rounds; r++) {
    for (var i = 0; i < grid.length; i++) {
      var cell = grid[i];
      cell.acc = cell.acc + cell.v;
      total = total + cell.acc;
    }
  }
}
relax(5);
relax(3);
)JS";
  js::Program program = js::parse(source);
  DependenceAnalyzer analyzer(program);
  VirtualClock clock;
  interp::Interpreter interp(program, clock, &analyzer);
  interp.run();
  ASSERT_FALSE(analyzer.warnings().empty());
  for (const auto& warning : analyzer.warnings()) {
    // The compact-delta theorem: flags are "ok ok" down to the outermost
    // divergent level, then iteration-shared, then fully shared. Verify
    // every materialized characterization has exactly that shape.
    bool seen_dep = false;
    for (const LevelFlags& level : warning.characterization.levels) {
      EXPECT_FALSE(level.instance_dep && !level.iteration_dep)
          << "dependence-ok is not a valid combination: " << warning.render(program);
      if (seen_dep) {
        // Every level below the outermost divergent one is fully shared.
        EXPECT_TRUE(level.instance_dep && level.iteration_dep)
            << warning.render(program);
      }
      if (level.instance_dep || level.iteration_dep) seen_dep = true;
    }
    EXPECT_TRUE(seen_dep) << "recorded warning must be problematic: "
                          << warning.render(program);
  }
}

/// Computed property keys are interned on first use: the same runtime string
/// reached through different expressions must dedup into one warning site,
/// and re-interning must not grow the atom table.
TEST(DependenceDifferential, InternedComputedKeysDedup) {
  const char* source = R"JS(
var o = {n: 0};
var keys = ['n', 'n'];
for (var i = 0; i < 40; i++) {
  o[keys[i % 2]] = o[keys[(i + 1) % 2]] + 1;
}
)JS";
  js::Program program = js::parse(source);
  DependenceAnalyzer analyzer(program);
  VirtualClock clock;
  interp::Interpreter interp(program, clock, &analyzer);
  const std::size_t atoms_before_run = js::atom_table_size();
  interp.run();
  // 'n' was already interned by the lexer (object literal + string
  // literals); computed access must reuse it, growing the table by at most
  // the handful of array-index keys ("0", "1") the loop touches.
  EXPECT_LE(js::atom_table_size(), atoms_before_run + 2);

  std::int64_t write_sites = 0;
  for (const auto& w : analyzer.warnings()) {
    if (w.kind == AccessKind::PropWrite && w.name == "n") {
      ++write_sites;
      EXPECT_GT(w.count, 1) << "computed-key occurrences must dedup";
    }
  }
  EXPECT_EQ(write_sites, 1);
}

}  // namespace
}  // namespace jsceres::ceres
