// Tests for the SS5.3 tooling extensions: the imperative-to-functional
// refactoring tool and the speculative-parallelization abort advisor.
#include <gtest/gtest.h>

#include "ceres/abort_advisor.h"
#include "ceres/dependence_analyzer.h"
#include "interp/interpreter.h"
#include "js/ast_printer.h"
#include "js/loop_scanner.h"
#include "js/parser.h"
#include "js/refactor.h"

namespace jsceres {
namespace {

using interp::Interpreter;

// ---------------------------------------------------------------------------
// Refactoring tool
// ---------------------------------------------------------------------------

std::string run_console(const std::string& source) {
  js::Program program = js::parse(source);
  VirtualClock clock;
  Interpreter interp(program, clock);
  interp.run();
  return interp.console_output();
}

TEST(Refactor, RewritesCanonicalLoop) {
  js::Program program = js::parse(
      "var data = [1, 2, 3, 4];\n"
      "var total = 0;\n"
      "for (var i = 0; i < data.length; i++) { total += data[i]; }\n"
      "console.log(total);\n");
  const js::RefactorReport report = js::to_functional(program);
  EXPECT_EQ(report.candidates, 1);
  EXPECT_EQ(report.rewritten, 1);
  EXPECT_NE(report.source.find("data.forEach(function (elem, i)"),
            std::string::npos)
      << report.source;
  // Reads of data[i] became elem.
  EXPECT_NE(report.source.find("total += elem"), std::string::npos) << report.source;
}

TEST(Refactor, RewrittenProgramBehavesIdentically) {
  const std::string source =
      "var data = [];\n"
      "for (var s = 0; s < 20; s++) { data.push(s * 3 % 7); }\n"
      "var total = 0;\n"
      "for (var i = 0; i < data.length; i++) { total += data[i] * data[i]; }\n"
      "console.log(total);\n";
  js::Program program = js::parse(source);
  const js::RefactorReport report = js::to_functional(program);
  EXPECT_GE(report.rewritten, 1);
  EXPECT_EQ(run_console(source), run_console(report.source));
}

TEST(Refactor, PrivatizesBodyVars) {
  // The paper's Fig. 6 effect: `var p` becomes callback-local.
  js::Program program = js::parse(
      "var bodies = [{v: 1}, {v: 2}];\n"
      "for (var i = 0; i < bodies.length; i++) { var p = bodies[i]; p.v += 1; }\n");
  const js::RefactorReport report = js::to_functional(program);
  ASSERT_EQ(report.rewritten, 1);
  // After the rewrite, `p` is a local of the callback; the dependence
  // analyzer no longer flags it.
  js::Program rewritten = js::parse(report.source);
  ceres::DependenceAnalyzer analyzer(rewritten);
  VirtualClock clock;
  Interpreter interp(rewritten, clock, &analyzer);
  interp.run();
  for (const auto& warning : analyzer.warnings()) {
    EXPECT_FALSE(warning.kind == ceres::AccessKind::VarWrite && warning.name == "p")
        << warning.render(rewritten);
  }
}

TEST(Refactor, SkipsLoopsWithBreak) {
  js::Program program = js::parse(
      "var data = [1, 2, 3];\n"
      "for (var i = 0; i < data.length; i++) { if (data[i] === 2) { break; } }\n");
  const js::RefactorReport report = js::to_functional(program);
  EXPECT_EQ(report.candidates, 1);
  EXPECT_EQ(report.rewritten, 0);
  ASSERT_FALSE(report.notes.empty());
  EXPECT_NE(report.notes[0].find("break/continue/return"), std::string::npos);
}

TEST(Refactor, SkipsNonCanonicalShapes) {
  // Starts at 1; steps by 2; compares against a scalar — none are canonical.
  js::Program program = js::parse(
      "var a = [1, 2, 3];\n"
      "var n = 3;\n"
      "for (var i = 1; i < a.length; i++) { }\n"
      "for (var j = 0; j < a.length; j += 2) { }\n"
      "for (var k = 0; k < n; k++) { }\n");
  const js::RefactorReport report = js::to_functional(program);
  EXPECT_EQ(report.rewritten, 0);
}

TEST(Refactor, SkipsWhenBodyWritesIndex) {
  js::Program program = js::parse(
      "var a = [1, 2, 3];\n"
      "for (var i = 0; i < a.length; i++) { if (a[i] < 0) { i = a.length; } }\n");
  const js::RefactorReport report = js::to_functional(program);
  EXPECT_EQ(report.candidates, 1);
  EXPECT_EQ(report.rewritten, 0);
}

TEST(Refactor, SkipsWhenBodyVarEscapes) {
  js::Program program = js::parse(
      "var a = [1, 2, 3];\n"
      "var last;\n"
      "for (var i = 0; i < a.length; i++) { var last = a[i]; }\n"
      "console.log(last);\n");
  const js::RefactorReport report = js::to_functional(program);
  EXPECT_EQ(report.rewritten, 0);
}

TEST(Refactor, RewritesNestedLoopsInsideFunctions) {
  js::Program program = js::parse(
      "function sum(values) {\n"
      "  var total = 0;\n"
      "  for (var i = 0; i < values.length; i++) { total += values[i]; }\n"
      "  return total;\n"
      "}\n"
      "console.log(sum([4, 5, 6]));\n");
  const js::RefactorReport report = js::to_functional(program);
  EXPECT_EQ(report.rewritten, 1);
  EXPECT_EQ(run_console(report.source), "15\n");
}

TEST(Refactor, CensusConfirmsStyleShift) {
  js::Program program = js::parse(
      "var a = [1, 2];\n"
      "for (var i = 0; i < a.length; i++) { a[i] = a[i] * 2; }\n"
      "for (var j = 0; j < a.length; j++) { console.log(a[j]); }\n");
  const js::RefactorReport report = js::to_functional(program);
  EXPECT_EQ(report.rewritten, 2);
  const js::Program rewritten = js::parse(report.source);
  const js::StyleCensus census = js::census(rewritten);
  EXPECT_EQ(census.imperative_loops(), 0);
  EXPECT_EQ(census.functional_op_calls, 2);
}

// ---------------------------------------------------------------------------
// Abort advisor
// ---------------------------------------------------------------------------

struct AdvisedRun {
  explicit AdvisedRun(const std::string& source)
      : program(js::parse(source)), analyzer(program), loops(clock) {
    interp::HookList hooks;
    hooks.add(&analyzer);
    hooks.add(&loops);
    Interpreter interp(program, clock, &hooks);
    interp.run();
  }
  js::Program program;
  VirtualClock clock;
  ceres::DependenceAnalyzer analyzer;
  ceres::LoopProfiler loops;
};

TEST(AbortAdvisor, ReductionLoopWouldAbortWithRemedy) {
  AdvisedRun run(
      "var acc = {sum: 0};\n"
      "var data = [1, 2, 3, 4];\n"
      "for (var i = 0; i < data.length; i++) { acc.sum = acc.sum + data[i]; }\n");
  const auto report = ceres::advise(run.program, run.analyzer, 1, &run.loops);
  EXPECT_TRUE(report.would_abort);
  bool has_flow_reason = false;
  for (const auto& reason : report.reasons) {
    if (reason.what.find("read-after-write") != std::string::npos) {
      has_flow_reason = true;
      EXPECT_NE(reason.remedy.find("reduction"), std::string::npos);
    }
  }
  EXPECT_TRUE(has_flow_reason) << report.render(run.program);
}

TEST(AbortAdvisor, DisjointWritesDoNotAbort) {
  AdvisedRun run(
      "var input = [1, 2, 3, 4];\n"
      "var out = [];\n"
      "out.length = 4;\n"
      "for (var i = 0; i < input.length; i++) { out[i] = input[i] * 2; }\n");
  const auto report = ceres::advise(run.program, run.analyzer, 1, &run.loops);
  EXPECT_FALSE(report.would_abort) << report.render(run.program);
}

TEST(AbortAdvisor, SharedGlobalSuggestsPrivatization) {
  AdvisedRun run(
      "var latest = 0;\n"
      "var data = [5, 6, 7];\n"
      "for (var i = 0; i < data.length; i++) { latest = data[i]; }\n");
  const auto report = ceres::advise(run.program, run.analyzer, 1, &run.loops);
  EXPECT_TRUE(report.would_abort);
  bool suggests_privatization = false;
  for (const auto& reason : report.reasons) {
    if (reason.remedy.find("privatize") != std::string::npos) {
      suggests_privatization = true;
    }
  }
  EXPECT_TRUE(suggests_privatization) << report.render(run.program);
}

TEST(AbortAdvisor, VarScopingGetsExtractionRemedy) {
  AdvisedRun run(
      "var bodies = [{x: 1}, {x: 2}];\n"
      "function step() {\n"
      "  for (var i = 0; i < bodies.length; i++) { var p = bodies[i]; p.x += 1; }\n"
      "}\n"
      "step();\n");
  const auto report = ceres::advise(run.program, run.analyzer, 1, &run.loops);
  bool extraction = false;
  for (const auto& reason : report.reasons) {
    if (reason.what.find("var scoping") != std::string::npos) {
      extraction = true;
      EXPECT_NE(reason.remedy.find("private binding"), std::string::npos);
    }
  }
  EXPECT_TRUE(extraction) << report.render(run.program);
}

TEST(AbortAdvisor, OuterCarriedDependencesDoNotBlameInnerLoop) {
  // Double-buffered solver: the k-loop carries the dependence; the row loop
  // (id 2) is clean.
  AdvisedRun run(
      "var a = [0, 0, 0, 0];\n"
      "var b = [1, 1, 1, 1];\n"
      "for (var k = 0; k < 4; k++) {\n"
      "  for (var j = 0; j < 4; j++) { b[j] = a[j] + 1; }\n"
      "  var t = a; a = b; b = t;\n"
      "}\n");
  const auto inner = ceres::advise(run.program, run.analyzer, 2, &run.loops);
  for (const auto& reason : inner.reasons) {
    EXPECT_EQ(reason.what.find("read-after-write"), std::string::npos)
        << inner.render(run.program);
  }
}

TEST(AbortAdvisor, RenderMentionsLoopAndVerdict) {
  AdvisedRun run(
      "var acc = {n: 0};\n"
      "var d = [1, 2];\n"
      "for (var i = 0; i < d.length; i++) { acc.n = acc.n + d[i]; }\n");
  const auto report = ceres::advise(run.program, run.analyzer, 1, &run.loops);
  const std::string text = report.render(run.program);
  EXPECT_NE(text.find("for at line 3"), std::string::npos) << text;
  EXPECT_NE(text.find("WOULD ABORT"), std::string::npos);
}

}  // namespace
}  // namespace jsceres
