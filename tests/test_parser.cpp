#include <gtest/gtest.h>

#include "js/loop_scanner.h"
#include "js/parser.h"

namespace jsceres::js {
namespace {

TEST(Parser, EmptyProgram) {
  const Program p = parse("");
  EXPECT_TRUE(p.statements.empty());
  EXPECT_EQ(p.loop_count(), 0);
}

TEST(Parser, VarDeclarationsHoistToTopLevel) {
  const Program p = parse("var a = 1; var b, c = 2;");
  ASSERT_EQ(p.hoisted_vars.size(), 3u);
  EXPECT_EQ(p.hoisted_vars[0], "a");
  EXPECT_EQ(p.hoisted_vars[2], "c");
}

TEST(Parser, VarInsideLoopHoistsToFunction) {
  const Program p = parse(
      "function f() {\n"
      "  for (var i = 0; i < 3; i++) { var p = i; }\n"
      "}\n");
  ASSERT_EQ(p.hoisted_functions.size(), 1u);
  const auto& fn = *p.hoisted_functions[0]->fn;
  ASSERT_EQ(fn.hoisted_vars.size(), 2u);
  EXPECT_EQ(fn.hoisted_vars[0], "i");
  EXPECT_EQ(fn.hoisted_vars[1], "p");
}

TEST(Parser, LoopTableRecordsKindAndLine) {
  const Program p = parse(
      "while (true) {\n"
      "  for (var i = 0; i < 3; i++) { }\n"
      "}\n");
  ASSERT_EQ(p.loop_count(), 2);
  EXPECT_EQ(p.loop(1).kind, LoopKind::While);
  EXPECT_EQ(p.loop(1).line, 1);
  EXPECT_EQ(p.loop(2).kind, LoopKind::For);
  EXPECT_EQ(p.loop(2).line, 2);
}

TEST(Parser, LoopIdAtLine) {
  const Program p = parse("var x = 0;\nwhile (x < 2) { x++; }\n");
  EXPECT_EQ(p.loop_id_at_line(2), 1);
  EXPECT_EQ(p.loop_id_at_line(1), 0);
}

TEST(Parser, ForInForms) {
  const Program p = parse("for (var k in obj) { } for (k in obj) { }");
  ASSERT_EQ(p.loop_count(), 2);
  EXPECT_EQ(p.loop(1).kind, LoopKind::ForIn);
  const auto* loop = static_cast<const ForIn*>(p.statements[0].get());
  EXPECT_TRUE(loop->declares_var);
  const auto* second = static_cast<const ForIn*>(p.statements[1].get());
  EXPECT_FALSE(second->declares_var);
}

TEST(Parser, OperatorPrecedence) {
  const Program p = parse("var x = 1 + 2 * 3;");
  const auto* decl = static_cast<const VarDecl*>(p.statements[0].get());
  const auto* add = static_cast<const Binary*>(decl->declarators[0].init.get());
  ASSERT_EQ(add->op, BinaryOp::Add);
  EXPECT_EQ(add->rhs->kind, NodeKind::Binary);
  EXPECT_EQ(static_cast<const Binary*>(add->rhs.get())->op, BinaryOp::Mul);
}

TEST(Parser, AssignmentIsRightAssociative) {
  const Program p = parse("a = b = 1;");
  const auto* stmt = static_cast<const ExprStmt*>(p.statements[0].get());
  const auto* outer = static_cast<const Assign*>(stmt->expr.get());
  EXPECT_EQ(outer->value->kind, NodeKind::Assign);
}

TEST(Parser, MemberChainsAndCalls) {
  const Program p = parse("a.b.c(1)[2].d();");
  const auto* stmt = static_cast<const ExprStmt*>(p.statements[0].get());
  ASSERT_EQ(stmt->expr->kind, NodeKind::Call);
  const auto* call = static_cast<const Call*>(stmt->expr.get());
  EXPECT_EQ(call->callee->kind, NodeKind::Member);
}

TEST(Parser, NewWithMemberCallee) {
  const Program p = parse("var v = new lib.Vec(1, 2);");
  const auto* decl = static_cast<const VarDecl*>(p.statements[0].get());
  ASSERT_EQ(decl->declarators[0].init->kind, NodeKind::New);
  const auto* node = static_cast<const New*>(decl->declarators[0].init.get());
  EXPECT_EQ(node->callee->kind, NodeKind::Member);
  EXPECT_EQ(node->args.size(), 2u);
}

TEST(Parser, FunctionExpressionAnonymous) {
  const Program p = parse("var f = function (x) { return x; };");
  const auto* decl = static_cast<const VarDecl*>(p.statements[0].get());
  ASSERT_EQ(decl->declarators[0].init->kind, NodeKind::FunctionExpr);
  const auto* fn = static_cast<const FunctionExpr*>(decl->declarators[0].init.get());
  EXPECT_TRUE(fn->fn->name.empty());
  EXPECT_EQ(fn->fn->params.size(), 1u);
}

TEST(Parser, FunctionIdsAreUnique) {
  const Program p = parse("function a() {} function b() {} var c = function () {};");
  EXPECT_EQ(p.fn_names.size(), 3u);
}

TEST(Parser, ConditionalExpression) {
  const Program p = parse("var x = a ? 1 : 2;");
  const auto* decl = static_cast<const VarDecl*>(p.statements[0].get());
  EXPECT_EQ(decl->declarators[0].init->kind, NodeKind::Conditional);
}

TEST(Parser, ObjectAndArrayLiterals) {
  const Program p = parse("var o = {a: 1, 'b c': 2, 3: 4}; var a = [1, [2], {}];");
  const auto* decl = static_cast<const VarDecl*>(p.statements[0].get());
  const auto* obj = static_cast<const ObjectLit*>(decl->declarators[0].init.get());
  ASSERT_EQ(obj->properties.size(), 3u);
  EXPECT_EQ(obj->properties[1].first, "b c");
}

TEST(Parser, KeywordPropertyNames) {
  EXPECT_NO_THROW(parse("var x = a.in;"));
  EXPECT_NO_THROW(parse("var y = {in: 1, for: 2};"));
}

TEST(Parser, TryCatchFinally) {
  const Program p = parse("try { f(); } catch (e) { g(e); } finally { h(); }");
  const auto* node = static_cast<const TryCatch*>(p.statements[0].get());
  EXPECT_EQ(node->catch_param, "e");
  EXPECT_NE(node->finally_block, nullptr);
}

TEST(Parser, TryWithoutHandlersThrows) {
  EXPECT_THROW(parse("try { f(); }"), ParseError);
}

TEST(Parser, MissingSemicolonThrows) {
  EXPECT_THROW(parse("var a = 1 var b = 2;"), ParseError);
}

TEST(Parser, InvalidAssignmentTargetThrows) {
  EXPECT_THROW(parse("1 = 2;"), ParseError);
}

TEST(Parser, DeleteRequiresMember) {
  EXPECT_THROW(parse("delete x;"), ParseError);
  EXPECT_NO_THROW(parse("delete x.y;"));
}

TEST(Parser, EnclosingFunctionRecordedForLoops) {
  const Program p = parse(
      "while (a) { }\n"
      "function f() { while (b) { } }\n");
  EXPECT_EQ(p.loop(1).enclosing_fn_id, 0);
  EXPECT_NE(p.loop(2).enclosing_fn_id, 0);
}

TEST(LoopScanner, CensusCountsLoopsAndOperators) {
  const Program p = parse(
      "for (var i = 0; i < 3; i++) { }\n"
      "while (x) { }\n"
      "arr.map(function (v) { return v; });\n"
      "arr.forEach(cb);\n");
  const StyleCensus c = census(p);
  EXPECT_EQ(c.for_loops, 1);
  EXPECT_EQ(c.while_loops, 1);
  EXPECT_EQ(c.imperative_loops(), 2);
  EXPECT_EQ(c.functional_op_calls, 2);
}

TEST(LoopScanner, BranchAndCallSitesPerLoop) {
  const Program p = parse(
      "for (var i = 0; i < 9; i++) {\n"
      "  if (i > 2) { f(i); } else { g(); }\n"
      "  var t = i > 4 ? 1 : 2;\n"
      "}\n");
  const auto loops = scan_loops(p);
  const auto& info = loops.at(1);
  EXPECT_EQ(info.branch_sites, 2);  // if + ?:
  EXPECT_EQ(info.call_sites, 2);    // f, g
  EXPECT_FALSE(info.condition_data_dependent);
}

TEST(LoopScanner, NestedLoopsCounted) {
  const Program p = parse(
      "for (var i = 0; i < 3; i++) {\n"
      "  for (var j = 0; j < 3; j++) { while (q) { } }\n"
      "}\n");
  const auto loops = scan_loops(p);
  EXPECT_EQ(loops.at(1).nested_loops, 2);
  EXPECT_EQ(loops.at(2).nested_loops, 1);
  EXPECT_EQ(loops.at(3).nested_loops, 0);
  EXPECT_TRUE(loops.at(3).condition_data_dependent);
}

}  // namespace
}  // namespace jsceres::js
