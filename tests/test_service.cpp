// AnalysisService: the resident multi-tenant ingress front-end. Admission
// (run / queue / structured shed), per-tenant concurrency caps, the memory
// governor's degrade/shed ladder and estimate reconciliation, the stuck-
// session watchdog, and end-to-end epoch reclamation of the shared
// structures once the service drains. This binary runs under the TSan and
// ASan CI jobs.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "interp/shape.h"
#include "js/atom.h"
#include "rivertrail/thread_pool.h"
#include "support/cancel.h"
#include "support/epoch.h"
#include "support/service.h"

namespace jsceres {
namespace {

using namespace std::chrono_literals;

/// A latch the test holds closed while it inspects the service mid-flight;
/// gated attempts block on it (observing their cancel token, so a watchdog
/// or shutdown can still reclaim them).
struct Gate {
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;
  std::atomic<int> entered{0};

  void release() {
    {
      const std::lock_guard lock(mutex);
      open = true;
    }
    cv.notify_all();
  }

  /// Block until release() or cancellation (which throws, so the supervisor
  /// classifies the attempt instead of the service hanging forever).
  void wait(CancelToken token) {
    entered.fetch_add(1, std::memory_order_release);
    std::unique_lock lock(mutex);
    while (!open) {
      token.raise_if_cancelled();
      cv.wait_for(lock, 1ms);
    }
  }

  /// Test-side: wait (bounded) until `n` attempts are parked on the gate.
  [[nodiscard]] bool await_entered(int n) const {
    for (int spin = 0; spin < 5000; ++spin) {
      if (entered.load(std::memory_order_acquire) >= n) return true;
      std::this_thread::sleep_for(1ms);
    }
    return false;
  }
};

ServiceRequest gated_request(std::string name, std::string tenant, Gate& gate) {
  ServiceRequest request;
  request.session.name = std::move(name);
  request.tenant = std::move(tenant);
  request.memory_estimate = 1u << 10;
  request.session.attempt = [&gate](const SessionRequest&, int,
                                    const EngineLimits&, std::int64_t,
                                    CancelToken token) -> AttemptSuccess {
    gate.wait(token);
    AttemptSuccess success;
    success.console = "ran";
    return success;
  };
  return request;
}

TEST(Service, AdmissionRunsQueuesAndShedsStructured) {
  rivertrail::ThreadPool pool(2);
  ServiceOptions options;
  options.max_active = 1;
  options.max_queue = 1;
  Gate gate;
  {
    AnalysisService service(pool, options);
    ServiceTicket first = service.submit(gated_request("first", "t", gate));
    ASSERT_TRUE(gate.await_entered(1));
    ServiceTicket queued = service.submit(gated_request("queued", "t", gate));

    // Queue full: the third submit is shed synchronously — its ticket is
    // already complete (never a hang) with a structured reason.
    ServiceTicket shed = service.submit(gated_request("shed-me", "t", gate));
    EXPECT_TRUE(shed.done());
    const ServiceOutcome& shed_outcome = shed.wait();
    EXPECT_EQ(shed_outcome.state, ServiceState::Shed);
    EXPECT_EQ(shed_outcome.shed_reason, "queue-full");
    EXPECT_EQ(shed_outcome.session.name, "shed-me");

    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, 3u);
    EXPECT_EQ(stats.shed_queue_full, 1u);
    EXPECT_EQ(stats.active_sessions, 1u);
    EXPECT_EQ(stats.queue_depth, 1u);

    // Open the gate: the active session completes and its completion
    // handler dispatches the queued one (no dispatcher thread to wake).
    gate.release();
    EXPECT_EQ(first.wait().state, ServiceState::Completed);
    EXPECT_EQ(queued.wait().state, ServiceState::Completed);
    service.drain();
    stats = service.stats();
    EXPECT_EQ(stats.completed, 2u);
    EXPECT_EQ(stats.queue_high_water, 1u);
  }
}

TEST(Service, PerTenantCapQueuesExcessWhileOtherTenantsRun) {
  rivertrail::ThreadPool pool(4);
  ServiceOptions options;
  options.max_active = 4;
  options.max_per_tenant = 1;
  Gate gate;
  {
    AnalysisService service(pool, options);
    ServiceTicket a1 = service.submit(gated_request("a1", "tenant-a", gate));
    ServiceTicket b1 = service.submit(gated_request("b1", "tenant-b", gate));
    ASSERT_TRUE(gate.await_entered(2));
    // tenant-a is at its cap: a2 queues even though global capacity is free.
    ServiceTicket a2 = service.submit(gated_request("a2", "tenant-a", gate));

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.active_sessions, 2u);  // a1 + b1, not a2
    EXPECT_EQ(stats.queue_depth, 1u);

    gate.release();
    EXPECT_EQ(a1.wait().state, ServiceState::Completed);
    EXPECT_EQ(b1.wait().state, ServiceState::Completed);
    EXPECT_EQ(a2.wait().state, ServiceState::Completed);
  }
}

TEST(Service, GovernorDegradesThenShedsUnderMemoryPressure) {
  rivertrail::ThreadPool pool(2);
  // Ceiling sized against the live shared structures so the arithmetic is
  // stable no matter what earlier tests interned: one 80 MiB reservation
  // lands in the degrade band, a second would cross the ceiling and sheds.
  const std::size_t shared = AnalysisService::shared_structure_bytes();
  ServiceOptions options;
  options.max_active = 4;
  options.governor.ceiling_bytes = shared + (100u << 20);
  Gate gate;
  {
    AnalysisService service(pool, options);

    std::atomic<int> observed_mode{-1};
    ServiceRequest big = gated_request("big", "t", gate);
    big.memory_estimate = 80u << 20;
    big.session.attempt = [&gate, &observed_mode](
                              const SessionRequest&, int mode,
                              const EngineLimits&, std::int64_t,
                              CancelToken token) -> AttemptSuccess {
      observed_mode.store(mode, std::memory_order_release);
      gate.wait(token);
      return AttemptSuccess{};
    };
    ServiceTicket first = service.submit(std::move(big));
    ASSERT_TRUE(gate.await_entered(1));

    // ~80% pressure at admission: degraded one rung (3 -> 1), visible both
    // in the mode the attempt actually ran and in the outcome state.
    EXPECT_EQ(observed_mode.load(std::memory_order_acquire), 1);

    // While the first reservation is held, another 80 MiB would cross the
    // ceiling: shed with a structured reason, reservation untouched.
    ServiceRequest second = gated_request("too-big", "t", gate);
    second.memory_estimate = 80u << 20;
    const ServiceOutcome shed_outcome = service.submit(std::move(second)).wait();
    EXPECT_EQ(shed_outcome.state, ServiceState::Shed);
    EXPECT_EQ(shed_outcome.shed_reason, "memory-pressure");
    EXPECT_EQ(service.stats().shed_memory, 1u);
    EXPECT_EQ(service.governor().shed_count(), 1u);

    gate.release();
    const ServiceOutcome& first_outcome = first.wait();
    EXPECT_EQ(first_outcome.state, ServiceState::Degraded);
    service.drain();

    // Released: the same reservation admits again (still degraded — the
    // shared structures alone don't clear the band's floor, the point is
    // the ceiling no longer blocks it).
    gate.release();  // idempotent; keeps the gate open for the re-admit
    ServiceRequest third = gated_request("fits-again", "t", gate);
    third.memory_estimate = 80u << 20;
    EXPECT_NE(service.submit(std::move(third)).wait().state, ServiceState::Shed);
  }
}

TEST(Service, GovernorReconcilesEstimateAgainstMeasuredPeak) {
  rivertrail::ThreadPool pool(2);
  ServiceOptions options;
  {
    AnalysisService service(pool, options);
    ServiceRequest request;
    request.session.name = "under-estimator";
    request.memory_estimate = 1u << 10;  // claims 1 KiB...
    request.session.attempt = [](const SessionRequest&, int, const EngineLimits&,
                                 std::int64_t, CancelToken) -> AttemptSuccess {
      AttemptSuccess success;
      success.peak_bytes = 10u << 20;  // ...actually peaks at 10 MiB
      return success;
    };
    const ServiceOutcome outcome = service.submit(std::move(request)).wait();
    EXPECT_EQ(outcome.state, ServiceState::Completed);
    EXPECT_EQ(outcome.session.peak_bytes, std::size_t(10u << 20));
    service.drain();
    // The reconciliation gap is surfaced for estimate tuning.
    EXPECT_GE(service.governor().max_underestimate(),
              std::size_t((10u << 20) - (1u << 10)));
  }
}

TEST(Service, WatchdogQuarantinesStuckSessionAndSparesSiblings) {
  rivertrail::ThreadPool pool(2);
  ServiceOptions options;
  options.max_active = 2;
  options.watchdog_interval_ms = 5;
  options.watchdog_stuck_ms = 25;
  Gate sibling_gate;
  {
    AnalysisService service(pool, options);

    // Never opens its gate: only the watchdog's sticky cancel ends it.
    ServiceRequest stuck;
    stuck.session.name = "stuck";
    stuck.tenant = "bad-tenant";
    stuck.session.attempt = [](const SessionRequest&, int, const EngineLimits&,
                               std::int64_t, CancelToken token) -> AttemptSuccess {
      for (;;) {
        token.raise_if_cancelled();
        std::this_thread::sleep_for(1ms);
      }
    };
    ServiceTicket stuck_ticket = service.submit(std::move(stuck));
    ServiceTicket sibling =
        service.submit(gated_request("sibling", "good-tenant", sibling_gate));
    ASSERT_TRUE(sibling_gate.await_entered(1));
    sibling_gate.release();

    const ServiceOutcome& stuck_outcome = stuck_ticket.wait();
    EXPECT_EQ(stuck_outcome.state, ServiceState::Quarantined);
    EXPECT_TRUE(stuck_outcome.watchdog_quarantined);
    // One attempt: the watchdog's explicit cancel is sticky, so the
    // supervisor cannot resurrect the session through a retry rung.
    EXPECT_EQ(stuck_outcome.session.attempts, 1);

    EXPECT_EQ(sibling.wait().state, ServiceState::Completed);
    service.drain();
    EXPECT_EQ(service.stats().watchdog_quarantines, 1u);
  }
}

TEST(Service, WaitForTimesOutThenSeesTheOutcome) {
  rivertrail::ThreadPool pool(2);
  Gate gate;
  AnalysisService service(pool, {});
  ServiceTicket ticket = service.submit(gated_request("slow", "t", gate));
  ASSERT_TRUE(gate.await_entered(1));

  // Outcome not final: a bounded wait returns nullopt instead of blocking,
  // and an immediate check agrees.
  EXPECT_FALSE(ticket.wait_for(10).has_value());
  EXPECT_FALSE(ticket.wait_for(0).has_value());
  EXPECT_FALSE(ticket.done());

  gate.release();
  const std::optional<ServiceOutcome> outcome = ticket.wait_for(10'000);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->state, ServiceState::Completed);
  // A nullopt claimed nothing about the future: later waits see the result.
  EXPECT_TRUE(ticket.wait_for(0).has_value());
  EXPECT_EQ(ticket.wait().state, ServiceState::Completed);
}

TEST(Service, WaitForRacingCompletionNeverLosesTheOutcome) {
  rivertrail::ThreadPool pool(2);
  AnalysisService service(pool, {});
  // Hammer the timeout-then-complete straddle: tiny bounded waits polled
  // against attempts of varying latency. Whatever interleaving the race
  // picks, wait_for either times out cleanly or returns the real outcome,
  // and the terminal wait() always agrees.
  for (int round = 0; round < 100; ++round) {
    ServiceRequest request;
    request.session.name = "race-" + std::to_string(round);
    const int stall_us = (round % 5) * 37;
    request.session.attempt = [stall_us](const SessionRequest&, int,
                                         const EngineLimits&, std::int64_t,
                                         CancelToken) -> AttemptSuccess {
      if (stall_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(stall_us));
      }
      AttemptSuccess success;
      success.console = "ran";
      return success;
    };
    ServiceTicket ticket = service.submit(std::move(request));
    std::optional<ServiceOutcome> outcome;
    while (!(outcome = ticket.wait_for(1)).has_value()) {
    }
    EXPECT_EQ(outcome->state, ServiceState::Completed);
    EXPECT_EQ(outcome->session.console, "ran");
  }
  service.drain();
}

TEST(Service, SubmitRacingShutdownAlwaysGetsAStructuredOutcome) {
  rivertrail::ThreadPool pool(4);
  // Submitters race begin_shutdown() across many rounds with a sliding
  // start offset. Every submit must land exactly one of two ways — served,
  // or shed with the structured "shutdown" reason — and joining the
  // submitters before the destructor keeps the calls inside the object's
  // lifetime, which is the documented fencing contract.
  for (int round = 0; round < 25; ++round) {
    constexpr int kSubmitters = 4;
    std::vector<ServiceOutcome> outcomes(kSubmitters);
    {
      AnalysisService service(pool, {});
      std::atomic<bool> go{false};
      std::vector<std::thread> submitters;
      for (int t = 0; t < kSubmitters; ++t) {
        submitters.emplace_back([&service, &go, &outcomes, t] {
          while (!go.load(std::memory_order_acquire)) {
          }
          ServiceRequest request;
          request.session.name = "race-" + std::to_string(t);
          request.session.attempt =
              [](const SessionRequest&, int, const EngineLimits&,
                 std::int64_t, CancelToken) -> AttemptSuccess {
            return AttemptSuccess{};
          };
          outcomes[std::size_t(t)] =
              service.submit(std::move(request)).wait();
        });
      }
      go.store(true, std::memory_order_release);
      if (round % 5 != 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(round * 20));
      }
      service.begin_shutdown();
      for (std::thread& submitter : submitters) submitter.join();
    }
    for (const ServiceOutcome& outcome : outcomes) {
      if (outcome.state == ServiceState::Shed) {
        EXPECT_EQ(outcome.shed_reason, "shutdown");
      } else {
        EXPECT_EQ(outcome.state, ServiceState::Completed);
      }
    }
  }
}

TEST(Service, DestructionImmediatelyAfterOutcomeIsSafe) {
  rivertrail::ThreadPool pool(2);
  // wait() returns the instant the completion handler publishes "idle";
  // destroying the service right then races the handler's tail. The
  // handler's final unlock is contractually its last touch of any member,
  // so this loop is TSan's chance to prove it.
  for (int round = 0; round < 50; ++round) {
    AnalysisService service(pool, {});
    ServiceRequest request;
    request.session.name = "teardown-" + std::to_string(round);
    request.session.attempt = [](const SessionRequest&, int,
                                 const EngineLimits&, std::int64_t,
                                 CancelToken) -> AttemptSuccess {
      return AttemptSuccess{};
    };
    EXPECT_EQ(service.submit(std::move(request)).wait().state,
              ServiceState::Completed);
  }
}

TEST(Service, RealSessionsReclaimSharedStateOnceDrained) {
  rivertrail::ThreadPool pool(4);
  ServiceOptions options;
  options.max_active = 4;
  options.max_queue = 32;  // all 24 submits must admit, never shed
  options.reclaim_every = 2;
  {
    AnalysisService service(pool, options);
    std::vector<ServiceTicket> tickets;
    for (int i = 0; i < 24; ++i) {
      // Unique names per session: every run interns fresh transient atoms
      // and grows fresh shape-tree children that only reclamation can free.
      const std::string n = std::to_string(i);
      ServiceRequest request;
      request.session.name = "real-" + n;
      request.tenant = "tenant-" + std::to_string(i % 3);
      request.session.source =
          "var obj_" + n + " = {};"
          "obj_" + n + ".alpha_" + n + " = 1;"
          "obj_" + n + ".beta_" + n + " = 2;"
          "console.log(obj_" + n + ".alpha_" + n + " + obj_" + n + ".beta_" + n + ");";
      tickets.push_back(service.submit(std::move(request)));
    }
    for (ServiceTicket& ticket : tickets) {
      const ServiceOutcome& outcome = ticket.wait();
      EXPECT_EQ(outcome.state, ServiceState::Completed) << outcome.session.error;
      EXPECT_EQ(outcome.session.console, "3\n");
    }
    service.drain();
  }
  // The destructor's final pass runs with no pins left: every transient
  // atom is reclaimed and the shape tree prunes back to its root.
  EXPECT_EQ(js::atom_table_retired_pending(), 0u);
  EXPECT_EQ(interp::Shape::live_count(), 1u);
}

}  // namespace
}  // namespace jsceres
