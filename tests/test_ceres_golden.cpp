// Golden-report differential tests: the mode-3 dependence reports and
// per-loop summaries for the corpus workloads must stay BYTE-IDENTICAL to
// the snapshots in tests/golden/, which were recorded with the pre-stamp-
// tree (vector-copy) analyzer. This is the acceptance gate for the
// hash-consed hot path: same warnings, same order, same counts, same
// summary counters — only faster.
//
// Regenerate (only when the *semantics* deliberately change) with
// tests/golden_gen.cpp; its serialization must stay in sync with
// golden_serialize below.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "workloads/runner.h"

namespace jsceres {
namespace {

std::string golden_serialize(const workloads::InstrumentedRun& run) {
  std::ostringstream out;
  out << run.dependence->report();
  out << "summaries:\n";
  for (const auto& [loop_id, s] : run.dependence->summaries()) {
    out << "loop " << loop_id << ": a=" << s.shared_var_writes
        << " b=" << s.shared_prop_writes << " c=" << s.flow_deps
        << " reads=" << s.shared_reads << " private=" << s.private_writes
        << " conflicts=" << s.conflicting_write_sites
        << " recursion=" << (s.recursion_detected ? 1 : 0) << "\n";
  }
  out << "globals:";
  for (const auto& w : run.dependence->warnings()) {
    out << " " << (w.global_binding ? 1 : 0);
  }
  out << "\n";
  return out.str();
}

std::string read_golden(const std::string& workload_name) {
  std::string stem = workload_name;  // mangle the name only, never the dir
  for (auto& c : stem) {
    if (c == ' ') c = '_';
  }
  const std::string file =
      std::string(JSCERES_TESTS_DIR) + "/golden/" + stem + ".mode3.txt";
  std::ifstream in(file);
  EXPECT_TRUE(in.good()) << "missing golden file: " << file;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class GoldenMode3 : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenMode3, WarningReportAndSummariesAreByteIdentical) {
  const auto& workload = workloads::workload_by_name(GetParam());
  const auto run = workloads::run_workload(workload, workloads::Mode::Dependence);
  EXPECT_EQ(golden_serialize(run), read_golden(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Corpus, GoldenMode3,
                         ::testing::Values("CamanJS", "fluidSim",
                                           "Tear-able Cloth"));

}  // namespace
}  // namespace jsceres
