#include <gtest/gtest.h>

#include "analysis/classifier.h"
#include "analysis/nest.h"
#include "interp/interpreter.h"
#include "js/parser.h"

namespace jsceres::analysis {
namespace {

using interp::Interpreter;

// ---------------------------------------------------------------------------
// Nest construction
// ---------------------------------------------------------------------------

struct ProfiledRun {
  explicit ProfiledRun(const std::string& source)
      : program(js::parse(source)), loops(clock) {
    Interpreter interp(program, clock, &loops);
    interp.run();
  }
  js::Program program;
  VirtualClock clock;
  ceres::LoopProfiler loops;
};

TEST(Nest, SyntacticNestingFormsOneNest) {
  ProfiledRun run(
      "for (var i = 0; i < 3; i++) {\n"
      "  for (var j = 0; j < 4; j++) { }\n"
      "}\n");
  const auto nests = build_nests(run.loops);
  ASSERT_EQ(nests.size(), 1u);
  EXPECT_EQ(nests[0].root_loop_id, 1);
  EXPECT_EQ(nests[0].members.size(), 2u);
  EXPECT_EQ(nests[0].instances, 1);
  EXPECT_DOUBLE_EQ(nests[0].trips_mean, 3.0);
}

TEST(Nest, CallNestingFollowsRuntime) {
  ProfiledRun run(
      "function inner() { for (var j = 0; j < 2; j++) { } }\n"
      "for (var i = 0; i < 3; i++) { inner(); }\n");
  const auto nests = build_nests(run.loops);
  ASSERT_EQ(nests.size(), 1u);
  // Loop 2 is the top-level for; loop 1 (inner's) nests under it at runtime.
  EXPECT_EQ(nests[0].root_loop_id, 2);
  EXPECT_EQ(nests[0].members.size(), 2u);
}

TEST(Nest, SiblingLoopsAreSeparateNests) {
  ProfiledRun run(
      "for (var i = 0; i < 300; i++) { }\n"
      "for (var j = 0; j < 100; j++) { }\n");
  const auto nests = build_nests(run.loops);
  ASSERT_EQ(nests.size(), 2u);
  // Sorted by runtime: the 300-trip loop first.
  EXPECT_EQ(nests[0].root_loop_id, 1);
  EXPECT_GT(nests[0].share_of_loop_time, nests[1].share_of_loop_time);
}

TEST(Nest, ReportRootsOverrideTopLevel) {
  ProfiledRun run(
      "for (var i = 0; i < 3; i++) {\n"
      "  for (var j = 0; j < 4; j++) { }\n"
      "}\n");
  const auto nests = build_nests(run.loops, {2});
  ASSERT_EQ(nests.size(), 1u);
  EXPECT_EQ(nests[0].root_loop_id, 2);
  EXPECT_EQ(nests[0].instances, 3);
  EXPECT_DOUBLE_EQ(nests[0].trips_mean, 4.0);
}

TEST(Nest, SharesSumToAtMostOne) {
  ProfiledRun run(
      "for (var i = 0; i < 50; i++) { }\n"
      "for (var j = 0; j < 50; j++) { }\n"
      "for (var k = 0; k < 50; k++) { }\n");
  const auto nests = build_nests(run.loops);
  double total = 0;
  for (const auto& nest : nests) total += nest.share_of_loop_time;
  EXPECT_LE(total, 1.0 + 1e-9);
  EXPECT_GT(total, 0.95);
}

TEST(Nest, TopNestsCoverage) {
  ProfiledRun run(
      "for (var i = 0; i < 800; i++) { }\n"
      "for (var j = 0; j < 150; j++) { }\n"
      "for (var k = 0; k < 50; k++) { }\n");
  const auto nests = build_nests(run.loops);
  const auto top = top_nests(nests, 2.0 / 3.0);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].root_loop_id, 1);
  EXPECT_LT(top.size(), nests.size());
}

// ---------------------------------------------------------------------------
// Classifier rules (Table 3 rubric)
// ---------------------------------------------------------------------------

NestEvidence base_evidence() {
  NestEvidence e;
  e.trips_mean = 100;
  e.trips_cv = 0.1;
  e.branch_sites = 0;
  return e;
}

TEST(Classifier, BranchFreeIsNoDivergence) {
  EXPECT_EQ(classify_divergence(base_evidence()), Divergence::None);
}

TEST(Classifier, LocalBranchesAreLittle) {
  auto e = base_evidence();
  e.branch_sites = 3;
  EXPECT_EQ(classify_divergence(e), Divergence::Little);
}

TEST(Classifier, RecursionDiverges) {
  auto e = base_evidence();
  e.recursion_detected = true;
  EXPECT_EQ(classify_divergence(e), Divergence::Yes);
}

TEST(Classifier, DegenerateTripsDiverge) {
  auto e = base_evidence();
  e.trips_mean = 1.1;  // Ace-style
  EXPECT_EQ(classify_divergence(e), Divergence::Yes);
}

TEST(Classifier, SmallDataDependentTripsDiverge) {
  auto e = base_evidence();
  e.trips_mean = 4;  // MyScript-style
  e.condition_data_dependent = true;
  EXPECT_EQ(classify_divergence(e), Divergence::Yes);
}

TEST(Classifier, HighTripVarianceDiverges) {
  auto e = base_evidence();
  e.branch_sites = 2;
  e.trips_cv = 2.0;
  EXPECT_EQ(classify_divergence(e), Divergence::Yes);
}

TEST(Classifier, PureLoopIsVeryEasy) {
  EXPECT_EQ(classify_dependences(base_evidence()), Difficulty::VeryEasy);
}

TEST(Classifier, DisjointWritesAreVeryEasy) {
  auto e = base_evidence();
  e.prop_write_sites = 4;  // out[i] = f(in[i])
  EXPECT_EQ(classify_dependences(e), Difficulty::VeryEasy);
}

TEST(Classifier, SharedScalarsAreEasy) {
  auto e = base_evidence();
  e.var_write_sites = 1;  // a global accumulator cache
  EXPECT_EQ(classify_dependences(e), Difficulty::Easy);
}

TEST(Classifier, ConflictingWritesAreEasy) {
  auto e = base_evidence();
  e.prop_write_sites = 1;
  e.conflicting_write_sites = 5;  // same field each iteration, write-only
  EXPECT_EQ(classify_dependences(e), Difficulty::Easy);
}

TEST(Classifier, FewFlowSitesAreMedium) {
  auto e = base_evidence();
  e.flow_sites = 3;  // reduction / stencil-like
  EXPECT_EQ(classify_dependences(e), Difficulty::Medium);
}

TEST(Classifier, ManyFlowSitesAreHardThenVeryHard) {
  auto e = base_evidence();
  e.flow_sites = 6;
  EXPECT_EQ(classify_dependences(e), Difficulty::Hard);
  e.flow_sites = 9;
  EXPECT_EQ(classify_dependences(e), Difficulty::VeryHard);
}

TEST(Classifier, HeavyDomAccessIsAlwaysVeryHard) {
  auto e = base_evidence();
  e.touches_dom = true;
  e.dom_touches_per_iteration = 2.0;  // Harmony: drawing IS the work
  EXPECT_EQ(classify_parallelization(e), Difficulty::VeryHard);
}

TEST(Classifier, LightDomAccessBumpsEasyNests) {
  auto e = base_evidence();
  e.var_write_sites = 1;  // easy deps
  e.touches_dom = true;
  e.dom_touches_per_iteration = 0.05;
  EXPECT_EQ(classify_parallelization(e), Difficulty::Medium);
}

TEST(Classifier, HardDepsAreNotBumpedFurther) {
  // D3: hard dependences + DOM + divergence stays "hard" — the dependences
  // are the binding constraint.
  auto e = base_evidence();
  e.flow_sites = 6;
  e.touches_dom = true;
  e.dom_touches_per_iteration = 0.05;
  e.recursion_detected = true;
  EXPECT_EQ(classify_parallelization(e), Difficulty::Hard);
}

TEST(Classifier, DivergenceBumpsEasyNests) {
  // Raytracing: very easy deps + recursion -> easy overall.
  auto e = base_evidence();
  e.prop_write_sites = 1;
  e.recursion_detected = true;
  EXPECT_EQ(classify_parallelization(e), Difficulty::Easy);
}

TEST(Classifier, TinyTripsBumpGranularity) {
  // processing.js rows: easy deps, ~4 trips -> medium.
  auto e = base_evidence();
  e.var_write_sites = 1;
  e.trips_mean = 4;
  EXPECT_EQ(classify_parallelization(e), Difficulty::Medium);
}

TEST(Classifier, BumpSaturatesAtVeryHard) {
  EXPECT_EQ(bump(Difficulty::VeryHard), Difficulty::VeryHard);
  EXPECT_EQ(bump(Difficulty::Hard, 5), Difficulty::VeryHard);
}

TEST(Classifier, LabelsAreStable) {
  EXPECT_STREQ(difficulty_label(Difficulty::VeryEasy), "very easy");
  EXPECT_STREQ(difficulty_label(Difficulty::VeryHard), "very hard");
  EXPECT_STREQ(divergence_label(Divergence::Little), "little");
}

// ---------------------------------------------------------------------------
// Amdahl bounds
// ---------------------------------------------------------------------------

TEST(Amdahl, AsymptoticBound) {
  EXPECT_DOUBLE_EQ(amdahl_bound(0.5), 2.0);
  EXPECT_DOUBLE_EQ(amdahl_bound(0.75), 4.0);
  EXPECT_DOUBLE_EQ(amdahl_bound(0.0), 1.0);
  EXPECT_TRUE(std::isinf(amdahl_bound(1.0)));
}

TEST(Amdahl, FiniteCores) {
  EXPECT_DOUBLE_EQ(amdahl_bound(1.0, 4), 4.0);
  EXPECT_NEAR(amdahl_bound(0.9, 4), 3.077, 1e-3);
  EXPECT_DOUBLE_EQ(amdahl_bound(0.0, 16), 1.0);
}

TEST(Amdahl, ClampsFraction) {
  EXPECT_DOUBLE_EQ(amdahl_bound(-0.5, 4), 1.0);
  EXPECT_DOUBLE_EQ(amdahl_bound(1.5, 4), 4.0);
}

/// Property sweep: the bound grows monotonically with both the parallel
/// fraction and the core count, and never exceeds the asymptote.
class AmdahlSweep : public ::testing::TestWithParam<int> {};

TEST_P(AmdahlSweep, MonotoneAndBounded) {
  const int cores = GetParam();
  double last = 0;
  for (int pct = 0; pct <= 100; pct += 5) {
    const double p = pct / 100.0;
    const double bound = amdahl_bound(p, cores);
    EXPECT_GE(bound, last);
    EXPECT_LE(bound, double(cores) + 1e-9);
    EXPECT_LE(bound, amdahl_bound(p, 0) + 1e-9);
    last = bound;
  }
}

INSTANTIATE_TEST_SUITE_P(CoreCounts, AmdahlSweep, ::testing::Values(2, 4, 8, 64));

}  // namespace
}  // namespace jsceres::analysis
