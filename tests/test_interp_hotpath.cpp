// Hot-path machinery introduced by the PIC / incremental-shape / arg-stack
// overhaul: the polymorphic inline-cache state machine, lazy shape
// flattening, argument-stack re-entrancy, and the zero-allocation guarantee
// for steady-state calls.
//
// This binary replaces the global allocator with a counting shim (see the
// bottom of the file) so the allocation test can assert an exact zero; the
// shim is pass-through malloc and affects no other behavior.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "interp/interpreter.h"
#include "interp/shape.h"
#include "js/atom.h"
#include "js/parser.h"
#include "support/clock.h"
#include "support/epoch.h"
#include "support/service.h"

namespace {
std::atomic<std::int64_t> g_alloc_count{0};
std::atomic<bool> g_counting{false};
}  // namespace

namespace jsceres::interp {
namespace {

// ---------------------------------------------------------------------------
// Polymorphic inline-cache state machine. The probe programs have exactly
// one named member site, so its cache id is 0 (the resolver assigns ids in
// AST traversal order).
// ---------------------------------------------------------------------------

ObjPtr object_with_keys(Interpreter& interp, std::initializer_list<const char*> keys) {
  ObjPtr obj = interp.make_object();
  double v = 1;
  for (const char* key : keys) obj->set_property(key, Value::number(v++));
  return obj;
}

TEST(PolymorphicIC, ReadSiteGrowsMonoToPolyAndHits) {
  static js::Program program = js::parse("function get(o) { return o.p; }");
  VirtualClock clock;
  Interpreter interp(program, clock);
  interp.run();
  const Value get = interp.global("get");

  // Four shapes, all carrying `p` at different slot indices.
  const ObjPtr a = object_with_keys(interp, {"p"});
  const ObjPtr b = object_with_keys(interp, {"q", "p"});
  const ObjPtr c = object_with_keys(interp, {"q", "r", "p"});
  const ObjPtr d = object_with_keys(interp, {"q", "r", "s", "p"});

  EXPECT_DOUBLE_EQ(interp.call(get, Value::undefined(), {Value::object(a)}).as_number(), 1);
  auto dbg = interp.debug_read_ic(0);
  EXPECT_EQ(dbg.ways, 1);
  EXPECT_FALSE(dbg.megamorphic);
  EXPECT_EQ(dbg.shapes[0], a->shape());

  EXPECT_DOUBLE_EQ(interp.call(get, Value::undefined(), {Value::object(b)}).as_number(), 2);
  dbg = interp.debug_read_ic(0);
  EXPECT_EQ(dbg.ways, 2);
  EXPECT_EQ(dbg.shapes[0], b->shape());  // newest way rotates to the front
  EXPECT_EQ(dbg.shapes[1], a->shape());

  EXPECT_DOUBLE_EQ(interp.call(get, Value::undefined(), {Value::object(c)}).as_number(), 3);
  EXPECT_DOUBLE_EQ(interp.call(get, Value::undefined(), {Value::object(d)}).as_number(), 4);
  dbg = interp.debug_read_ic(0);
  EXPECT_EQ(dbg.ways, 4);
  EXPECT_FALSE(dbg.megamorphic);

  // All four shapes now hit without changing the cache contents.
  const Shape* front = interp.debug_read_ic(0).shapes[0];
  for (int round = 0; round < 3; ++round) {
    EXPECT_DOUBLE_EQ(interp.call(get, Value::undefined(), {Value::object(a)}).as_number(), 1);
    EXPECT_DOUBLE_EQ(interp.call(get, Value::undefined(), {Value::object(d)}).as_number(), 4);
  }
  dbg = interp.debug_read_ic(0);
  EXPECT_EQ(dbg.ways, 4);
  EXPECT_EQ(dbg.shapes[0], front);
}

TEST(PolymorphicIC, LruRotationEvictsOldestWay) {
  static js::Program program = js::parse("function get(o) { return o.p; }");
  VirtualClock clock;
  Interpreter interp(program, clock);
  interp.run();
  const Value get = interp.global("get");

  const ObjPtr a = object_with_keys(interp, {"p"});
  const ObjPtr b = object_with_keys(interp, {"b1", "p"});
  const ObjPtr c = object_with_keys(interp, {"c1", "c2", "p"});
  const ObjPtr d = object_with_keys(interp, {"d1", "d2", "d3", "p"});
  const ObjPtr e = object_with_keys(interp, {"e1", "e2", "e3", "e4", "p"});
  for (const ObjPtr& o : {a, b, c, d}) {
    interp.call(get, Value::undefined(), {Value::object(o)});
  }
  // Cache full: [d, c, b, a]. A fifth shape rotates the oldest (a) out.
  EXPECT_DOUBLE_EQ(interp.call(get, Value::undefined(), {Value::object(e)}).as_number(), 5);
  const auto dbg = interp.debug_read_ic(0);
  EXPECT_EQ(dbg.ways, 4);
  EXPECT_EQ(dbg.shapes[0], e->shape());
  EXPECT_EQ(dbg.shapes[1], d->shape());
  EXPECT_EQ(dbg.shapes[2], c->shape());
  EXPECT_EQ(dbg.shapes[3], b->shape());
}

TEST(PolymorphicIC, SustainedThrashGoesMegamorphicAndStaysCorrect) {
  static js::Program program = js::parse("function get(o) { return o.p; }");
  VirtualClock clock;
  Interpreter interp(program, clock);
  interp.run();
  const Value get = interp.global("get");

  std::vector<ObjPtr> objs;
  for (int i = 0; i < 16; ++i) {
    ObjPtr obj = interp.make_object();
    for (int pad = 0; pad < i; ++pad) {
      obj->set_property("mega_pad" + std::to_string(i) + "_" + std::to_string(pad),
                        Value::number(0));
    }
    obj->set_property("p", Value::number(i));
    objs.push_back(std::move(obj));
  }
  for (int i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(
        interp.call(get, Value::undefined(), {Value::object(objs[std::size_t(i)])}).as_number(), i);
  }
  const auto dbg = interp.debug_read_ic(0);
  EXPECT_TRUE(dbg.megamorphic);
  EXPECT_EQ(dbg.ways, 0);  // probes stop; every access resolves generically
  // Megamorphic reads remain correct, including back on the earliest shapes.
  EXPECT_DOUBLE_EQ(interp.call(get, Value::undefined(), {Value::object(objs[0])}).as_number(), 0);
  EXPECT_DOUBLE_EQ(interp.call(get, Value::undefined(), {Value::object(objs[7])}).as_number(), 7);
  EXPECT_TRUE(interp.debug_read_ic(0).megamorphic);
}

TEST(PolymorphicIC, MegamorphicReadSiteRecachesAfterStableStreak) {
  static js::Program program = js::parse("function get(o) { return o.p; }");
  VirtualClock clock;
  Interpreter interp(program, clock);
  interp.run();
  const Value get = interp.global("get");

  // Parade 16 distinct shapes through the site to trip it megamorphic.
  std::vector<ObjPtr> objs;
  for (int i = 0; i < 16; ++i) {
    ObjPtr obj = interp.make_object();
    for (int pad = 0; pad < i; ++pad) {
      obj->set_property("rc_pad" + std::to_string(i) + "_" + std::to_string(pad),
                        Value::number(0));
    }
    obj->set_property("p", Value::number(i));
    objs.push_back(std::move(obj));
  }
  for (int i = 0; i < 16; ++i) {
    interp.call(get, Value::undefined(), {Value::object(objs[std::size_t(i)])});
  }
  ASSERT_TRUE(interp.debug_read_ic(0).megamorphic);

  // A stable shape (distinct from the parade's last) must survive
  // kRecacheHits - 1 = 15 generic accesses without flipping the site...
  const ObjPtr stable = object_with_keys(interp, {"s1", "p"});
  for (int i = 0; i < 15; ++i) {
    EXPECT_DOUBLE_EQ(
        interp.call(get, Value::undefined(), {Value::object(stable)}).as_number(), 2);
    EXPECT_TRUE(interp.debug_read_ic(0).megamorphic);
    EXPECT_EQ(interp.debug_read_ic(0).ways, 0);
  }
  // ...and the 16th consecutive access re-caches: the site leaves the
  // megamorphic state and that same access installs its way.
  EXPECT_DOUBLE_EQ(
      interp.call(get, Value::undefined(), {Value::object(stable)}).as_number(), 2);
  auto dbg = interp.debug_read_ic(0);
  EXPECT_FALSE(dbg.megamorphic);
  EXPECT_EQ(dbg.ways, 1);
  EXPECT_EQ(dbg.shapes[0], stable->shape());

  // The recovered cache serves hits again, and can grow polymorphic anew.
  EXPECT_DOUBLE_EQ(
      interp.call(get, Value::undefined(), {Value::object(objs[0])}).as_number(), 0);
  dbg = interp.debug_read_ic(0);
  EXPECT_FALSE(dbg.megamorphic);
  EXPECT_EQ(dbg.ways, 2);
  EXPECT_EQ(dbg.shapes[0], objs[0]->shape());
  EXPECT_EQ(dbg.shapes[1], stable->shape());
}

TEST(PolymorphicIC, AlternatingShapesNeverAssembleRecacheStreak) {
  static js::Program program = js::parse("function get(o) { return o.p; }");
  VirtualClock clock;
  Interpreter interp(program, clock);
  interp.run();
  const Value get = interp.global("get");

  std::vector<ObjPtr> objs;
  for (int i = 0; i < 16; ++i) {
    ObjPtr obj = interp.make_object();
    for (int pad = 0; pad < i; ++pad) {
      obj->set_property("alt_pad" + std::to_string(i) + "_" + std::to_string(pad),
                        Value::number(0));
    }
    obj->set_property("p", Value::number(i));
    objs.push_back(std::move(obj));
  }
  for (int i = 0; i < 16; ++i) {
    interp.call(get, Value::undefined(), {Value::object(objs[std::size_t(i)])});
  }
  ASSERT_TRUE(interp.debug_read_ic(0).megamorphic);

  // A genuinely bimorphic thrash resets the streak on every flip: far more
  // than kRecacheHits total accesses, never kRecacheHits consecutive.
  for (int round = 0; round < 40; ++round) {
    const ObjPtr& obj = objs[std::size_t(round % 2)];
    EXPECT_DOUBLE_EQ(
        interp.call(get, Value::undefined(), {Value::object(obj)}).as_number(),
        round % 2);
  }
  EXPECT_TRUE(interp.debug_read_ic(0).megamorphic);
  EXPECT_EQ(interp.debug_read_ic(0).ways, 0);
}

TEST(PolymorphicIC, ChurningPrototypeUnderStableReceiverStaysMegamorphic) {
  static js::Program program = js::parse("function get(o) { return o.p; }");
  VirtualClock clock;
  Interpreter interp(program, clock);
  interp.run();
  const Value get = interp.global("get");

  // Parade 16 distinct shapes through the site to trip it megamorphic.
  std::vector<ObjPtr> objs;
  for (int i = 0; i < 16; ++i) {
    ObjPtr obj = interp.make_object();
    for (int pad = 0; pad < i; ++pad) {
      obj->set_property("ph_pad" + std::to_string(i) + "_" + std::to_string(pad),
                        Value::number(0));
    }
    obj->set_property("p", Value::number(i));
    objs.push_back(std::move(obj));
  }
  for (int i = 0; i < 16; ++i) {
    interp.call(get, Value::undefined(), {Value::object(objs[std::size_t(i)])});
  }
  ASSERT_TRUE(interp.debug_read_ic(0).megamorphic);
  const std::uint64_t recaches_before = interp.ic_stats().recaches;

  // `p` lives on the receiver's direct prototype, and the prototype
  // alternates between two shapes while the receiver's own shape never
  // changes. The re-cache streak tracks the (receiver shape, holder shape)
  // PAIR, so it resets on every flip; a streak over the receiver shape
  // alone would re-cache after 16 accesses and then miss on every flip.
  const ObjPtr receiver = object_with_keys(interp, {"ph_r"});
  const ObjPtr proto_a = object_with_keys(interp, {"p"});
  const ObjPtr proto_b = object_with_keys(interp, {"ph_b", "p"});
  ASSERT_NE(proto_a->shape(), proto_b->shape());
  for (int round = 0; round < 40; ++round) {
    receiver->set_prototype(round % 2 == 0 ? proto_a : proto_b);
    EXPECT_DOUBLE_EQ(
        interp.call(get, Value::undefined(), {Value::object(receiver)}).as_number(),
        round % 2 == 0 ? 1 : 2);
  }
  EXPECT_TRUE(interp.debug_read_ic(0).megamorphic);
  EXPECT_EQ(interp.debug_read_ic(0).ways, 0);
  EXPECT_EQ(interp.ic_stats().recaches, recaches_before);

  // Hold the holder still too and the pair streak assembles: 15 accesses
  // stay megamorphic, the 16th re-caches a proto way for this exact pair.
  receiver->set_prototype(proto_a);
  for (int i = 0; i < 15; ++i) {
    EXPECT_DOUBLE_EQ(
        interp.call(get, Value::undefined(), {Value::object(receiver)}).as_number(), 1);
    EXPECT_TRUE(interp.debug_read_ic(0).megamorphic);
  }
  EXPECT_DOUBLE_EQ(
      interp.call(get, Value::undefined(), {Value::object(receiver)}).as_number(), 1);
  auto dbg = interp.debug_read_ic(0);
  EXPECT_FALSE(dbg.megamorphic);
  EXPECT_EQ(dbg.ways, 1);
  EXPECT_EQ(dbg.shapes[0], receiver->shape());
  EXPECT_EQ(interp.ic_stats().recaches, recaches_before + 1);

  // The recovered proto way serves hits without further misses.
  const std::uint64_t misses_after = interp.ic_stats().read_misses;
  EXPECT_DOUBLE_EQ(
      interp.call(get, Value::undefined(), {Value::object(receiver)}).as_number(), 1);
  EXPECT_EQ(interp.ic_stats().read_misses, misses_after);
  EXPECT_EQ(interp.debug_read_ic(0).ways, 1);
}

TEST(PolymorphicIC, ICStatsTrackTheSiteStateMachine) {
  static js::Program program = js::parse("function get(o) { return o.p; }");
  VirtualClock clock;
  Interpreter interp(program, clock);
  interp.run();
  const Value get = interp.global("get");
  const std::uint64_t base_hits = interp.ic_stats().read_hits;
  const std::uint64_t base_misses = interp.ic_stats().read_misses;

  // First access misses (installs the way), the next nine hit.
  const ObjPtr obj = object_with_keys(interp, {"p"});
  for (int i = 0; i < 10; ++i) {
    interp.call(get, Value::undefined(), {Value::object(obj)});
  }
  EXPECT_EQ(interp.ic_stats().read_misses, base_misses + 1);
  EXPECT_EQ(interp.ic_stats().read_hits, base_hits + 9);

  // A 16-shape parade trips the site; the trip is counted exactly once.
  const std::uint64_t base_trips = interp.ic_stats().megamorphic_trips;
  for (int i = 0; i < 16; ++i) {
    ObjPtr thrash = interp.make_object();
    for (int pad = 0; pad <= i; ++pad) {
      thrash->set_property("st_pad" + std::to_string(i) + "_" + std::to_string(pad),
                           Value::number(0));
    }
    thrash->set_property("p", Value::number(i));
    interp.call(get, Value::undefined(), {Value::object(thrash)});
  }
  ASSERT_TRUE(interp.debug_read_ic(0).megamorphic);
  EXPECT_EQ(interp.ic_stats().megamorphic_trips, base_trips + 1);

  // A stable streak re-caches; the recache is counted exactly once.
  const std::uint64_t base_recaches = interp.ic_stats().recaches;
  for (int i = 0; i < 16; ++i) {
    interp.call(get, Value::undefined(), {Value::object(obj)});
  }
  EXPECT_FALSE(interp.debug_read_ic(0).megamorphic);
  EXPECT_EQ(interp.ic_stats().recaches, base_recaches + 1);
}

TEST(PolymorphicIC, MegamorphicWriteSiteRecachesAfterStableStreak) {
  static js::Program program = js::parse("function put(o, v) { o.p = v; }");
  VirtualClock clock;
  Interpreter interp(program, clock);
  interp.run();
  const Value put = interp.global("put");

  std::vector<ObjPtr> objs;
  for (int i = 0; i < 16; ++i) {
    ObjPtr obj = interp.make_object();
    for (int pad = 0; pad < i + 1; ++pad) {
      obj->set_property("wr_pad" + std::to_string(i) + "_" + std::to_string(pad),
                        Value::number(0));
    }
    obj->set_property("p", Value::number(i));
    objs.push_back(std::move(obj));
  }
  for (int i = 0; i < 16; ++i) {
    interp.call(put, Value::undefined(),
                {Value::object(objs[std::size_t(i)]), Value::number(i)});
  }
  ASSERT_TRUE(interp.debug_write_ic(0).megamorphic);

  // 16 consecutive in-place stores through one shape re-cache the site.
  const ObjPtr stable = object_with_keys(interp, {"ws", "p"});
  for (int i = 0; i < 16; ++i) {
    interp.call(put, Value::undefined(),
                {Value::object(stable), Value::number(100 + i)});
  }
  const auto dbg = interp.debug_write_ic(0);
  EXPECT_FALSE(dbg.megamorphic);
  EXPECT_EQ(dbg.ways, 1);
  EXPECT_EQ(dbg.shapes[0], stable->shape());
  EXPECT_FALSE(dbg.is_transition[0]);
  EXPECT_DOUBLE_EQ(stable->own_property(std::string("p"))->as_number(), 115);
}

TEST(PolymorphicIC, WriteSiteCachesTransitionTarget) {
  static js::Program program = js::parse("function put(o, v) { o.q = v; }");
  VirtualClock clock;
  Interpreter interp(program, clock);
  interp.run();
  const Value put = interp.global("put");

  const ObjPtr o1 = object_with_keys(interp, {"base"});
  const ObjPtr o2 = object_with_keys(interp, {"base"});
  ASSERT_EQ(o1->shape(), o2->shape());

  interp.call(put, Value::undefined(), {Value::object(o1), Value::number(10)});
  auto dbg = interp.debug_write_ic(0);
  EXPECT_EQ(dbg.ways, 1);
  EXPECT_TRUE(dbg.is_transition[0]);  // property-add way caches the target

  // Same starting shape: the cached transition appends without resolving,
  // and both objects land on the identical (deduplicated) shape.
  interp.call(put, Value::undefined(), {Value::object(o2), Value::number(20)});
  EXPECT_EQ(interp.debug_write_ic(0).ways, 1);
  EXPECT_EQ(o1->shape(), o2->shape());
  EXPECT_DOUBLE_EQ(o1->own_property(std::string("q"))->as_number(), 10);
  EXPECT_DOUBLE_EQ(o2->own_property(std::string("q"))->as_number(), 20);

  // o1 now owns `q`: the same site sees the post-transition shape and adds
  // an in-place-store way next to the transition way.
  interp.call(put, Value::undefined(), {Value::object(o1), Value::number(30)});
  dbg = interp.debug_write_ic(0);
  EXPECT_EQ(dbg.ways, 2);
  EXPECT_FALSE(dbg.is_transition[0]);
  EXPECT_EQ(dbg.shapes[0], o1->shape());
  EXPECT_DOUBLE_EQ(o1->own_property(std::string("q"))->as_number(), 30);
}

// ---------------------------------------------------------------------------
// Incremental shapes: slots must be stable across lazy flattening, deep
// chains must flatten on their second lookup, and concurrent growth of one
// transition subtree must be race-free (this test runs under TSan in CI).
// ---------------------------------------------------------------------------

TEST(IncrementalShape, SlotsStableAcrossLazyFlattening) {
  const Shape* shape = Shape::root();
  std::vector<js::Atom> atoms;
  for (int i = 0; i < 12; ++i) {
    atoms.push_back(js::Atom::intern("ishape_a_" + std::to_string(i)));
    shape = shape->transition(atoms.back());
  }
  EXPECT_EQ(shape->slot_count(), 12u);
  EXPECT_FALSE(shape->flattened_for_test());

  std::vector<std::int32_t> before;
  for (const js::Atom& atom : atoms) before.push_back(shape->slot_of(atom));
  // Depth 12 > kDeepChain: the second round of lookups runs flattened.
  EXPECT_TRUE(shape->flattened_for_test());
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    EXPECT_EQ(before[i], std::int32_t(i));
    EXPECT_EQ(shape->slot_of(atoms[i]), std::int32_t(i));
  }
  EXPECT_EQ(shape->slot_of(js::Atom::intern("ishape_a_missing")), -1);
  // Enumeration order is insertion order.
  ASSERT_EQ(shape->keys().size(), atoms.size());
  for (std::size_t i = 0; i < atoms.size(); ++i) EXPECT_EQ(shape->keys()[i], atoms[i]);
}

TEST(IncrementalShape, DeepChainFlattensOnSecondLookupOnly) {
  const Shape* shape = Shape::root();
  js::Atom first = js::Atom::intern("ishape_b_0");
  shape = shape->transition(first);
  for (int i = 1; i < 10; ++i) {
    shape = shape->transition(js::Atom::intern("ishape_b_" + std::to_string(i)));
  }
  EXPECT_EQ(shape->slot_of(first), 0);  // first lookup: plain chain walk
  EXPECT_FALSE(shape->flattened_for_test());
  EXPECT_EQ(shape->slot_of(first), 0);  // second lookup materializes
  EXPECT_TRUE(shape->flattened_for_test());
}

TEST(IncrementalShape, ShallowChainFlattensWhenHot) {
  const Shape* shape = Shape::root()
                           ->transition(js::Atom::intern("ishape_c_0"))
                           ->transition(js::Atom::intern("ishape_c_1"));
  const js::Atom probe = js::Atom::intern("ishape_c_0");
  for (int i = 0; i < int(Shape::kHotFlattenLookups) - 1; ++i) {
    EXPECT_EQ(shape->slot_of(probe), 0);
    EXPECT_FALSE(shape->flattened_for_test());
  }
  EXPECT_EQ(shape->slot_of(probe), 0);
  EXPECT_TRUE(shape->flattened_for_test());
}

TEST(IncrementalShape, ConcurrentTransitionGrowthIsRaceFreeAndDeduplicated) {
  constexpr int kThreads = 8;
  constexpr int kDepth = 24;
  // Pre-intern so the threads race on the shape tree, not the atom table.
  std::vector<js::Atom> shared_keys;
  for (int i = 0; i < kDepth; ++i) {
    shared_keys.push_back(js::Atom::intern("ishape_d_" + std::to_string(i)));
  }
  std::vector<const Shape*> results(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &shared_keys, &results] {
      // Every thread builds the same chain (racing on each link's
      // transition map) and probes/flattens while others still build.
      const Shape* shape = Shape::root();
      for (int i = 0; i < kDepth; ++i) {
        shape = shape->transition(shared_keys[std::size_t(i)]);
        EXPECT_EQ(shape->slot_of(shared_keys[0]), 0);
      }
      // Private divergence at the tip must not disturb the shared chain.
      const Shape* tip =
          shape->transition(js::Atom::intern("ishape_d_tip_" + std::to_string(t)));
      EXPECT_EQ(tip->slot_count(), kDepth + 1u);
      EXPECT_EQ(std::size_t(tip->keys().size()), std::size_t(kDepth) + 1);
      results[std::size_t(t)] = shape;
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[0], results[std::size_t(t)]);  // one tree, shared nodes
  }
  for (int i = 0; i < kDepth; ++i) {
    EXPECT_EQ(results[0]->slot_of(shared_keys[std::size_t(i)]), i);
  }
}

// ---------------------------------------------------------------------------
// Atom table under concurrent sessions. Eight threads cycle epoch-pinned
// AtomScopes, racing interns of shared and private names against lookups
// and against full reclamation passes issued from the workers themselves —
// the resident service's steady state, compressed. Runs under TSan in CI.
// ---------------------------------------------------------------------------

TEST(AtomTorture, ConcurrentScopedInternLookupAndReclaim) {
  constexpr int kThreads = 8;
  constexpr int kIterations = 60;
  constexpr int kSharedNames = 8;
  constexpr int kPrivateNames = 8;

  // Materialize the lazily-interned (immortal) empty atom first so the
  // before/after comparison sees only the torture's own atoms.
  const js::Atom empty_atom;
  ASSERT_TRUE(empty_atom.empty());
  const std::size_t baseline = js::atom_table_size();

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int iter = 0; iter < kIterations; ++iter) {
        // One scope per iteration = one session: its transient atoms retire
        // when it ends, racing the other threads' live scopes.
        const EpochPin pin;
        const js::AtomScope scope;

        // Shared names: every thread interns the same spellings, racing
        // scope-reference bumps on one entry.
        for (int k = 0; k < kSharedNames; ++k) {
          const std::string text = "torture_shared_" + std::to_string(k);
          const js::Atom atom = js::Atom::intern(text);
          EXPECT_EQ(atom.str(), text);
          js::Atom found;
          ASSERT_TRUE(js::Atom::try_find(text, &found));
          EXPECT_EQ(found, atom);  // identity: one entry per spelling
        }
        // Private names: unique per (thread, iteration), so every iteration
        // retires its own batch and the table must not accrete them.
        for (int k = 0; k < kPrivateNames; ++k) {
          const std::string text = "torture_t" + std::to_string(t) + "_i" +
                                   std::to_string(iter) + "_" + std::to_string(k);
          const js::Atom atom = js::Atom::intern(text);
          EXPECT_EQ(atom.str(), text);
          EXPECT_EQ(atom, js::Atom::intern(text));  // re-intern dedups
        }
        // Misses must stay misses (and not disturb concurrent interns).
        js::Atom missing;
        EXPECT_FALSE(js::Atom::try_find(
            "torture_never_" + std::to_string(t) + "_" + std::to_string(iter),
            &missing));
        EXPECT_GE(scope.touched(), std::size_t(kSharedNames + kPrivateNames));

        // A few workers run the full serialized reclamation pass mid-flight,
        // racing everyone else's pinned lookups. It may free nothing (our
        // own pin holds the floor down) — the point is that it's safe.
        if ((iter + t) % 16 == 0) {
          EpochDomain::global().advance();
          AnalysisService::run_reclamation_pass();
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // All scopes are gone: one final pass must reclaim every transient atom
  // the torture created — the table returns to its pre-test size.
  EpochDomain::global().advance();
  AnalysisService::run_reclamation_pass();
  EXPECT_LE(js::atom_table_size(), baseline);
  EXPECT_EQ(js::atom_table_retired_pending(), 0u);
}

// ---------------------------------------------------------------------------
// Argument-stack re-entrancy.
// ---------------------------------------------------------------------------

Value run_and_get(Interpreter& interp, const char* name) {
  interp.run();
  return interp.global(name);
}

TEST(ArgStack, NestedCallsInArgumentPosition) {
  static js::Program program = js::parse(
      "function add4(a, b, c, d) { return a + b * 10 + c * 100 + d * 1000; }\n"
      "function inc(x) { return x + 1; }\n"
      "function fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }\n"
      "var result = add4(inc(0), add4(inc(1), 0, 0, fib(5)), inc(2), fib(6));\n");
  VirtualClock clock;
  Interpreter interp(program, clock);
  const Value result = run_and_get(interp, "result");
  // add4(1, 2 + 5000, 3, 8) = 1 + 50020 + 300 + 8000
  EXPECT_DOUBLE_EQ(result.as_number(), 1 + 5002 * 10 + 3 * 100 + 8 * 1000);
  EXPECT_EQ(interp.debug_arg_stack_in_use(), 0u);
}

TEST(ArgStack, DeepRecursionWithWideFrames) {
  static js::Program program = js::parse(
      "function deep(n, a, b, c, d, e, f, g) {\n"
      "  if (n === 0) { return a + b + c + d + e + f + g; }\n"
      "  return deep(n - 1, a + 1, b, c, d, e, f, g);\n"
      "}\n"
      "var result = deep(100, 0, 1, 2, 3, 4, 5, 6);\n");
  VirtualClock clock;
  Interpreter interp(program, clock);
  const Value result = run_and_get(interp, "result");
  EXPECT_DOUBLE_EQ(result.as_number(), 100 + 1 + 2 + 3 + 4 + 5 + 6);
  EXPECT_EQ(interp.debug_arg_stack_in_use(), 0u);
}

TEST(ArgStack, ExceptionUnwindingMidArgumentEvaluation) {
  static js::Program program = js::parse(
      "function boom() { throw {name: 'E', message: 'mid-args'}; }\n"
      "function id(x) { return x; }\n"
      "function f3(a, b, c) { return a + b + c; }\n"
      "var caught = 0;\n"
      "var after = 0;\n"
      "function tryIt(depth) {\n"
      "  if (depth > 0) { return tryIt(depth - 1) + 1; }\n"
      "  try {\n"
      "    f3(id(1), f3(id(2), boom(), id(3)), id(4));\n"
      "  } catch (e) {\n"
      "    caught = caught + 1;\n"
      "  }\n"
      "  return 0;\n"
      "}\n"
      "tryIt(5);\n"
      "tryIt(0);\n"
      "after = f3(10, id(20), 30);\n"  // the stack must still be balanced
      "var result = caught * 1000 + after;\n");
  VirtualClock clock;
  Interpreter interp(program, clock);
  const Value result = run_and_get(interp, "result");
  EXPECT_DOUBLE_EQ(result.as_number(), 2 * 1000 + 60);
  EXPECT_EQ(interp.debug_arg_stack_in_use(), 0u);
}

TEST(ArgStack, FunctionCallForwardsArgumentTail) {
  static js::Program program = js::parse(
      "function weigh(a, b, c) { return a + b * 10 + c * 100; }\n"
      "var result = weigh.call(null, 1, 2, 3) + weigh.apply(null, [4, 5, 6]);\n");
  VirtualClock clock;
  Interpreter interp(program, clock);
  const Value result = run_and_get(interp, "result");
  EXPECT_DOUBLE_EQ(result.as_number(), (1 + 20 + 300) + (4 + 50 + 600));
  EXPECT_EQ(interp.debug_arg_stack_in_use(), 0u);
}

// ---------------------------------------------------------------------------
// Zero-allocation steady state: after warmup, a call-dominated loop must
// perform no heap allocation at all — activations come from EnvPool,
// argument frames from the ArgStack, and ticks batch into a counter.
// ---------------------------------------------------------------------------

TEST(ArgStackAllocation, SteadyStateCallsAllocateNothing) {
  static js::Program program = js::parse(
      "function add3(a, b, c) { return a + b + c; }\n"
      "function driver(n) {\n"
      "  var t = 0;\n"
      "  for (var i = 0; i < n; i++) { t += add3(i, i + 1, add3(i, 1, 2)); }\n"
      "  return t;\n"
      "}\n"
      "var warm = driver(64);\n");
  VirtualClock clock;
  Interpreter interp(program, clock);
  interp.run();  // warms pools, segment storage, caches
  interp.call(interp.global("driver"), Value::undefined(), {Value::number(32)});

  g_alloc_count.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  const Value result =
      interp.call(interp.global("driver"), Value::undefined(), {Value::number(512)});
  g_counting.store(false, std::memory_order_relaxed);

  EXPECT_TRUE(result.is_number());
  // sum over i < 512 of add3(i, i+1, i+3) = 3i + 4.
  EXPECT_DOUBLE_EQ(result.as_number(), 3.0 * (511.0 * 512 / 2) + 4.0 * 512);
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), 0)
      << "steady-state calls must not touch the heap";
}

TEST(ArgStackAllocation, ApplyForwardsThroughArgStackWithoutAllocating) {
  // Regression: apply() used to snapshot the argument array into a
  // std::vector per call — one heap allocation on every invocation. It now
  // forwards through the same reused ArgStack frame as a direct call, so an
  // apply-dominated loop must be allocation-free too. The argument array is
  // hoisted and mutated in place; writes to existing elements reuse storage.
  static js::Program program = js::parse(
      "function add3(a, b, c) { return a + b + c; }\n"
      "var arr = [0, 0, 0];\n"
      "function driver(n) {\n"
      "  var t = 0;\n"
      "  for (var i = 0; i < n; i++) {\n"
      "    arr[0] = i; arr[1] = i + 1; arr[2] = 2;\n"
      "    t += add3.apply(null, arr);\n"
      "  }\n"
      "  return t;\n"
      "}\n"
      "var warm = driver(64);\n");
  VirtualClock clock;
  Interpreter interp(program, clock);
  interp.run();
  interp.call(interp.global("driver"), Value::undefined(), {Value::number(32)});

  g_alloc_count.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  const Value result =
      interp.call(interp.global("driver"), Value::undefined(), {Value::number(512)});
  g_counting.store(false, std::memory_order_relaxed);

  EXPECT_TRUE(result.is_number());
  // sum over i < 512 of (i + (i + 1) + 2) = 2i + 3.
  EXPECT_DOUBLE_EQ(result.as_number(), 2.0 * (511.0 * 512 / 2) + 3.0 * 512);
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), 0)
      << "apply() must reuse the ArgStack frame, not allocate a snapshot";
  EXPECT_EQ(interp.debug_arg_stack_in_use(), 0u);
}

// ---------------------------------------------------------------------------
// Mode-3 index-atom gate: element accesses in instrumented runs must emit
// the same canonical key spellings as interning did, via the cache.
// ---------------------------------------------------------------------------

struct RecordingHooks final : ExecutionHooks {
  struct Prop {
    bool write = false;
    std::uint64_t obj_id = 0;
    std::string key;
  };
  std::vector<Prop> props;
  [[nodiscard]] bool wants_memory_events() const override { return true; }
  void on_prop_write(std::uint64_t obj_id, js::Atom key, int,
                     const BaseProvenance&) override {
    props.push_back({true, obj_id, key.str()});
  }
  void on_prop_read(std::uint64_t obj_id, js::Atom key, int,
                    const BaseProvenance&) override {
    props.push_back({false, obj_id, key.str()});
  }
};

TEST(IndexAtomGate, ArrayLoopEventsCarryCanonicalIndexKeys) {
  static js::Program program = js::parse(
      "var a = [5, 6, 7];\n"
      "var s = 0;\n"
      "for (var i = 0; i < 3; i++) { s += a[i]; a[i] = s; }\n"
      "a.push(9);\n");
  VirtualClock clock;
  RecordingHooks hooks;
  Interpreter interp(program, clock, &hooks);
  interp.run();
  // Literal writes 0,1,2; per iteration read i + write i; then the `push`
  // method lookup (a property read) and the element write it performs.
  std::vector<std::string> expected_keys = {"0", "1", "2", "0", "0",    "1",
                                            "1", "2", "2", "push", "3"};
  std::vector<bool> expected_writes = {true,  true, true,  false, true, false,
                                       true,  false, true, false, true};
  ASSERT_EQ(hooks.props.size(), expected_keys.size());
  for (std::size_t i = 0; i < expected_keys.size(); ++i) {
    EXPECT_EQ(hooks.props[i].key, expected_keys[i]) << "event " << i;
    EXPECT_EQ(hooks.props[i].write, expected_writes[i]) << "event " << i;
    EXPECT_EQ(hooks.props[i].obj_id, hooks.props[0].obj_id);
  }
}

}  // namespace
}  // namespace jsceres::interp

// ---------------------------------------------------------------------------
// Counting allocator shim (whole-binary): pass-through malloc that bumps a
// counter while a test has switched counting on.
// ---------------------------------------------------------------------------

namespace {
void* counted_alloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return std::malloc(size ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
