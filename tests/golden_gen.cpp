// One-shot generator for tests/golden/*.txt — serializes the mode-3
// dependence report + per-loop summaries for the corpus workloads. The
// serialization here must stay in sync with tests/test_ceres_golden.cpp
// (golden_serialize), which asserts byte-identical output.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "workloads/runner.h"

using namespace jsceres;

static std::string golden_serialize(const workloads::InstrumentedRun& run) {
  std::ostringstream out;
  out << run.dependence->report();
  out << "summaries:\n";
  for (const auto& [loop_id, s] : run.dependence->summaries()) {
    out << "loop " << loop_id << ": a=" << s.shared_var_writes
        << " b=" << s.shared_prop_writes << " c=" << s.flow_deps
        << " reads=" << s.shared_reads << " private=" << s.private_writes
        << " conflicts=" << s.conflicting_write_sites
        << " recursion=" << (s.recursion_detected ? 1 : 0) << "\n";
  }
  out << "globals:";
  for (const auto& w : run.dependence->warnings()) {
    out << " " << (w.global_binding ? 1 : 0);
  }
  out << "\n";
  return out.str();
}

int main() {
  for (const char* name : {"CamanJS", "fluidSim", "Tear-able Cloth"}) {
    const auto& workload = workloads::workload_by_name(name);
    const auto run = workloads::run_workload(workload, workloads::Mode::Dependence);
    std::string file = std::string("tests/golden/") + name + ".mode3.txt";
    for (auto& c : file) {
      if (c == ' ') c = '_';
    }
    std::ofstream(file) << golden_serialize(run);
    std::printf("wrote %s (%zu warnings)\n", file.c_str(),
                run.dependence->warnings().size());
  }
  return 0;
}
