#include <gtest/gtest.h>

#include "js/lexer.h"

namespace jsceres::js {
namespace {

std::vector<Tok> kinds(const std::string& src) {
  std::vector<Tok> out;
  for (const auto& t : lex(src)) out.push_back(t.kind);
  return out;
}

TEST(Lexer, EmptyInputYieldsEof) {
  const auto tokens = lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, Tok::Eof);
}

TEST(Lexer, Numbers) {
  const auto tokens = lex("42 3.5 1e3 2.5e-2 0x1f");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_DOUBLE_EQ(tokens[0].number, 42);
  EXPECT_DOUBLE_EQ(tokens[1].number, 3.5);
  EXPECT_DOUBLE_EQ(tokens[2].number, 1000);
  EXPECT_DOUBLE_EQ(tokens[3].number, 0.025);
  EXPECT_DOUBLE_EQ(tokens[4].number, 31);
}

TEST(Lexer, Strings) {
  const auto tokens = lex(R"('abc' "d\ne" 'q\'t')");
  EXPECT_EQ(tokens[0].text, "abc");
  EXPECT_EQ(tokens[1].text, "d\ne");
  EXPECT_EQ(tokens[2].text, "q't");
}

TEST(Lexer, UnterminatedStringThrows) {
  EXPECT_THROW(lex("'abc"), LexError);
}

TEST(Lexer, KeywordsVsIdentifiers) {
  const auto tokens = lex("var variable function functional");
  EXPECT_EQ(tokens[0].kind, Tok::KwVar);
  EXPECT_EQ(tokens[1].kind, Tok::Ident);
  EXPECT_EQ(tokens[2].kind, Tok::KwFunction);
  EXPECT_EQ(tokens[3].kind, Tok::Ident);
}

TEST(Lexer, MultiCharOperators) {
  EXPECT_EQ(kinds("=== !== == != <= >= && || << >> >>> += -="),
            (std::vector<Tok>{Tok::EqEqEq, Tok::NotEqEq, Tok::EqEq, Tok::NotEq,
                              Tok::Le, Tok::Ge, Tok::AndAnd, Tok::OrOr, Tok::Shl,
                              Tok::Shr, Tok::UShr, Tok::PlusAssign, Tok::MinusAssign,
                              Tok::Eof}));
}

TEST(Lexer, IncrementVsPlusAssign) {
  EXPECT_EQ(kinds("i++ + ++j"),
            (std::vector<Tok>{Tok::Ident, Tok::PlusPlus, Tok::Plus, Tok::PlusPlus,
                              Tok::Ident, Tok::Eof}));
}

TEST(Lexer, LineComments) {
  const auto tokens = lex("a // comment\nb");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
  EXPECT_EQ(tokens[1].line, 2);
}

TEST(Lexer, BlockComments) {
  const auto tokens = lex("a /* x\ny */ b");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].text, "b");
  EXPECT_EQ(tokens[1].line, 2);
}

TEST(Lexer, UnterminatedBlockCommentThrows) {
  EXPECT_THROW(lex("/* oops"), LexError);
}

TEST(Lexer, LineNumbersTrackNewlines) {
  const auto tokens = lex("a\nb\n\nc");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[2].line, 4);
}

TEST(Lexer, UnexpectedCharacterThrows) {
  EXPECT_THROW(lex("a # b"), LexError);
}

TEST(Lexer, DollarAndUnderscoreIdentifiers) {
  const auto tokens = lex("$el _private x$1");
  EXPECT_EQ(tokens[0].text, "$el");
  EXPECT_EQ(tokens[1].text, "_private");
  EXPECT_EQ(tokens[2].text, "x$1");
}

TEST(Lexer, DotVsNumberDot) {
  const auto tokens = lex("a.b 1.5");
  EXPECT_EQ(tokens[1].kind, Tok::Dot);
  EXPECT_DOUBLE_EQ(tokens[3].number, 1.5);
}

}  // namespace
}  // namespace jsceres::js
