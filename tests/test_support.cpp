#include <gtest/gtest.h>

#include "support/clock.h"
#include "support/epoch.h"
#include "support/rng.h"
#include "support/str.h"
#include "support/table.h"
#include "support/welford.h"

namespace jsceres {
namespace {

TEST(VirtualClock, TickAdvancesBothClocks) {
  VirtualClock clock;
  clock.tick(1000);
  EXPECT_EQ(clock.cpu_ns(), 1000 * VirtualClock::kTickNs);
  EXPECT_EQ(clock.wall_ns(), 1000 * VirtualClock::kTickNs);
}

TEST(VirtualClock, BlockAdvancesWallOnly) {
  VirtualClock clock;
  clock.tick(10);
  clock.block_ns(5000);
  EXPECT_EQ(clock.cpu_ns(), 10 * VirtualClock::kTickNs);
  EXPECT_EQ(clock.wall_ns(), 10 * VirtualClock::kTickNs + 5000);
}

TEST(VirtualClock, AdvanceWallToOnlyMovesForward) {
  VirtualClock clock;
  clock.advance_wall_to(100);
  EXPECT_EQ(clock.wall_ns(), 100);
  clock.advance_wall_to(50);
  EXPECT_EQ(clock.wall_ns(), 100);
}

TEST(VirtualClock, SecondsConversion) {
  VirtualClock clock;
  clock.tick(200'000);  // 2e5 ticks * 10us = 2s
  EXPECT_DOUBLE_EQ(clock.cpu_seconds(), 2.0);
}

TEST(Rng, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBetweenInclusive) {
  Rng rng(4);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_between(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= v == 2;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Welford, MeanAndVariance) {
  Welford w;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.add(x);
  EXPECT_EQ(w.count(), 8);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_DOUBLE_EQ(w.variance(), 4.0);
  EXPECT_DOUBLE_EQ(w.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(w.total(), 40.0);
}

TEST(Welford, EmptyIsZero) {
  Welford w;
  EXPECT_EQ(w.count(), 0);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
}

TEST(Welford, MergeMatchesSequential) {
  Welford all;
  Welford left;
  Welford right;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
}

TEST(Str, Split) {
  const auto parts = str::split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(Str, SplitWs) {
  const auto parts = str::split_ws("  foo \t bar\nbaz ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "baz");
}

TEST(Str, ContainsWord) {
  EXPECT_TRUE(str::contains_word("real-time 3d games", "games"));
  EXPECT_TRUE(str::contains_word("peer-to-peer apps", "peer-to-peer"));
  EXPECT_FALSE(str::contains_word("gameshow", "game"));
}

TEST(Str, CompactCount) {
  EXPECT_EQ(str::compact_count(90000), "90k");
  EXPECT_EQ(str::compact_count(54600), "54.6k");
  EXPECT_EQ(str::compact_count(120), "120");
  EXPECT_EQ(str::compact_count(1077), "1.1k");
}

TEST(Str, Fixed) { EXPECT_EQ(str::fixed(3.14159, 2), "3.14"); }

TEST(Table, RendersAlignedCells) {
  Table t({"name", "value"});
  t.set_align(1, Table::Align::Right);
  t.add_row({"alpha", "1"});
  t.add_row({"b", "100"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| alpha |     1 |"), std::string::npos);
  EXPECT_NE(out.find("| b     |   100 |"), std::string::npos);
}

TEST(Table, RuleSeparatesSections) {
  Table t({"x"});
  t.add_row({"a"});
  t.add_rule();
  t.add_row({"b"});
  const std::string out = t.render();
  // header rule + top + bottom + section rule
  std::size_t rules = 0;
  for (std::size_t pos = 0; (pos = out.find("+--", pos)) != std::string::npos; ++pos) ++rules;
  EXPECT_EQ(rules, 4u);
}

// A private domain per test: the global one is shared with whatever the
// rest of the binary pinned or retired.
TEST(Epoch, RetireWaitsForOverlappingPins) {
  EpochDomain domain;
  int freed = 0;
  const EpochDomain::Epoch pinned = domain.pin();
  domain.retire(100, [&freed] { ++freed; });
  domain.advance();
  // The pin predates the retire epoch: nothing may free yet.
  EXPECT_EQ(domain.reclaim(), 0u);
  EXPECT_EQ(domain.deferred_bytes(), 100u);
  EXPECT_EQ(freed, 0);

  domain.unpin(pinned);
  EXPECT_EQ(domain.reclaim(), 100u);
  EXPECT_EQ(freed, 1);
  EXPECT_EQ(domain.deferred_bytes(), 0u);
  EXPECT_EQ(domain.reclaimed_bytes(), 100u);
}

TEST(Epoch, MinPinnedIsOldestLivePin) {
  EpochDomain domain;
  const EpochDomain::Epoch old_pin = domain.pin();
  domain.advance();
  domain.advance();
  const EpochDomain::Epoch young_pin = domain.pin();
  EXPECT_EQ(domain.min_pinned(), old_pin);
  EXPECT_EQ(domain.pinned_count(), 2u);

  domain.unpin(old_pin);
  EXPECT_EQ(domain.min_pinned(), young_pin);
  domain.unpin(young_pin);
  // No pins: everything retired so far is reclaimable (floor current+1).
  EXPECT_EQ(domain.min_pinned(), domain.current() + 1);
  EXPECT_EQ(domain.pinned_count(), 0u);
}

TEST(Epoch, FloorCapHoldsBackFreesNewerThanTheCallersFloor) {
  EpochDomain domain;
  domain.retire(10, [] {});
  const EpochDomain::Epoch floor = domain.min_pinned();  // current + 1
  domain.advance();
  domain.retire(20, [] {});  // retired at an epoch >= the captured floor

  // Capped to the caller's earlier floor: only the first retire is old
  // enough — the multi-structure pass contract (see run_reclamation_pass).
  EXPECT_EQ(domain.reclaim(floor), 10u);
  EXPECT_EQ(domain.deferred_count(), 1u);
  // Uncapped, with no pins alive, the rest drains.
  EXPECT_EQ(domain.reclaim(), 20u);
  EXPECT_EQ(domain.deferred_count(), 0u);
}

TEST(Epoch, PinIsRaiiAndDoubleUnpinIsIgnored) {
  EpochDomain domain;
  {
    const EpochPin pin(domain);
    EXPECT_EQ(domain.pinned_count(), 1u);
    EXPECT_EQ(domain.min_pinned(), pin.epoch());
    domain.unpin(999);  // unknown epoch: ignored
    EXPECT_EQ(domain.pinned_count(), 1u);
  }
  EXPECT_EQ(domain.pinned_count(), 0u);
}

TEST(BarChart, RendersProportionalBars) {
  BarChart chart("demo", 10);
  chart.add("half", 0.5, "50%");
  chart.add("full", 1.0, "100%");
  const std::string out = chart.render();
  EXPECT_NE(out.find("#####     | 50%"), std::string::npos);
  EXPECT_NE(out.find("##########| 100%"), std::string::npos);
}

}  // namespace
}  // namespace jsceres
