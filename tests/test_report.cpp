#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "report/pipeline.h"
#include "report/result_store.h"
#include "report/tables.h"

namespace jsceres::report {
namespace {

TEST(Table3, SingleWorkloadRowsAreComplete) {
  const auto rows = build_table3_rows(workloads::workload_by_name("fluidSim"));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].workload, "fluidSim");
  EXPECT_GT(rows[0].root_line, 0);
  EXPECT_GT(rows[0].share, 0.5);
  EXPECT_EQ(rows[0].divergence, analysis::Divergence::None);
  EXPECT_FALSE(rows[0].dom_access);
  EXPECT_EQ(rows[0].breaking_deps, analysis::Difficulty::Easy);
  EXPECT_EQ(rows[0].difficulty, analysis::Difficulty::Easy);
}

TEST(Table3, AceRowsAreVeryHard) {
  const auto rows = build_table3_rows(workloads::workload_by_name("Ace"));
  ASSERT_EQ(rows.size(), 2u);
  for (const auto& row : rows) {
    EXPECT_EQ(row.divergence, analysis::Divergence::Yes);
    EXPECT_TRUE(row.dom_access);
    EXPECT_EQ(row.breaking_deps, analysis::Difficulty::VeryHard);
    EXPECT_EQ(row.difficulty, analysis::Difficulty::VeryHard);
  }
}

TEST(Table3, RenderGroupsByWorkload) {
  std::vector<Table3Row> rows(3);
  rows[0].workload = "A";
  rows[1].workload = "A";
  rows[2].workload = "B";
  rows[0].trips_mean = 90000;
  const std::string out = render_table3(rows);
  EXPECT_NE(out.find("90k"), std::string::npos);
  EXPECT_NE(out.find("Table 3"), std::string::npos);
  // Repeated-workload rows leave the name cell blank: exactly one "| A ".
  std::size_t a_cells = 0;
  for (std::size_t pos = 0; (pos = out.find("| A ", pos)) != std::string::npos; ++pos) {
    ++a_cells;
  }
  EXPECT_EQ(a_cells, 1u);
}

TEST(Table2, RenderIncludesPaperReference) {
  std::vector<Table2Row> rows(1);
  rows[0].name = "DemoApp";
  rows[0].measured = {1.5, 1.0, 0.5};
  rows[0].paper = {10, 5, 2.5};
  const std::string out = render_table2(rows);
  EXPECT_NE(out.find("DemoApp"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_NE(out.find("10 / 5.00 / 2.50"), std::string::npos);
}

TEST(Amdahl, RenderCountsAppsAboveThreshold) {
  std::vector<AmdahlRow> rows(2);
  rows[0] = {"fast", 0.9, analysis::amdahl_bound(0.9, 4), analysis::amdahl_bound(0.9)};
  rows[1] = {"slow", 0.1, analysis::amdahl_bound(0.1, 4), analysis::amdahl_bound(0.1)};
  const std::string out = render_amdahl(rows);
  EXPECT_NE(out.find("apps with upper bound > 3x: 1 of 2"), std::string::npos);
}

TEST(ResultStore, StoresAndIndexesSnapshots) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "jsceres-store-test").string();
  std::filesystem::remove_all(dir);
  ResultStore store(dir);
  const std::string path = store.store("table2", "hello world\n");
  EXPECT_TRUE(std::filesystem::exists(path));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "hello world\n");
  EXPECT_TRUE(std::filesystem::exists(std::filesystem::path(dir) / "index.md"));
  std::filesystem::remove_all(dir);
}

// End-to-end Fig. 5 report flow (instrument -> exercise -> interpret ->
// version into the store). This was previously exercised only by the old
// fig5 bench binary; now that bench measures the frame pipeline, the
// coverage lives here.
TEST(Pipeline, RunPipelineFilesACompleteReport) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "jsceres-pipeline-test").string();
  std::filesystem::remove_all(dir);
  ResultStore store(dir);
  const workloads::Workload& workload = workloads::workload_by_name("HAAR.js");
  const PipelineResult result = run_pipeline(workload, store);
  EXPECT_TRUE(std::filesystem::exists(result.stored_path));
  EXPECT_NE(result.report.find("# JS-CERES report: HAAR.js"), std::string::npos);
  EXPECT_NE(result.report.find("## running time (mode 1)"), std::string::npos);
  EXPECT_NE(result.report.find("## loop nests (modes 2+3)"), std::string::npos);
  EXPECT_NE(result.report.find("## dependence warnings (mode 3"), std::string::npos);
  EXPECT_NE(result.report.find("## speculation advice"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(ResultStore, IdenticalContentHashesIdentically) {
  EXPECT_EQ(ResultStore::content_hash("abc"), ResultStore::content_hash("abc"));
  EXPECT_NE(ResultStore::content_hash("abc"), ResultStore::content_hash("abd"));
}

TEST(ResultStore, VersionsDifferingContent) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "jsceres-store-test2").string();
  std::filesystem::remove_all(dir);
  ResultStore store(dir);
  const std::string p1 = store.store("report", "v1");
  const std::string p2 = store.store("report", "v2");
  EXPECT_NE(p1, p2);  // content-addressed: both versions kept
  EXPECT_TRUE(std::filesystem::exists(p1));
  EXPECT_TRUE(std::filesystem::exists(p2));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace jsceres::report
