// Calibration / smoke binary: runs every workload in Combined mode and
// dumps Table-2 style numbers plus per-nest stats and classifier outputs.
// Used during development to tune workload scales; kept as a debugging aid.
#include <chrono>
#include <cstdio>
#include <exception>

#include "analysis/classifier.h"
#include "analysis/nest.h"
#include "js/loop_scanner.h"
#include "workloads/runner.h"

using namespace jsceres;

int main() {
  for (const auto& workload : workloads::all_workloads()) {
    const auto host_start = std::chrono::steady_clock::now();
    try {
      auto run = workloads::run_workload(workload, workloads::Mode::Combined);
      const double host_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - host_start)
                                 .count();
      const auto row = run.table2_row();
      std::printf("%-20s total=%6.2fs active=%6.2fs loops=%6.2fs host=%6.0fms\n",
                  workload.name.c_str(), row.total_s, row.active_s, row.in_loops_s,
                  host_ms);
      const auto nests = analysis::build_nests(*run.loops, run.nest_roots);
      const auto static_info = js::scan_loops(run.program);
      for (const auto& nest : nests) {
        const auto evidence =
            analysis::gather_evidence(nest, run.program, static_info, *run.dependence);
        std::printf(
            "  nest@line%-4d share=%5.1f%% inst=%-7lld trips=%7.1f±%-7.1f dom=%d/%d "
            "div=%-6s deps=%-9s par=%-9s [var=%d prop=%d flow=%d conf=%d rec=%d]\n",
            run.program.loop(nest.root_loop_id).line, nest.share_of_loop_time * 100,
            (long long)nest.instances, nest.trips_mean, nest.trips_stddev,
            nest.touches_dom, nest.touches_canvas,
            analysis::divergence_label(analysis::classify_divergence(evidence)),
            analysis::difficulty_label(analysis::classify_dependences(evidence)),
            analysis::difficulty_label(analysis::classify_parallelization(evidence)),
            evidence.var_write_sites, evidence.prop_write_sites, evidence.flow_sites,
            evidence.conflicting_write_sites, int(evidence.recursion_detected));
      }
    } catch (const std::exception& e) {
      std::printf("%-20s FAILED: %s\n", workload.name.c_str(), e.what());
    }
  }
  return 0;
}
