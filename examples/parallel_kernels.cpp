// The "what if the browser exposed parallelism" demo: run the C++ ports of
// the parallelizable workload kernels on the River-Trail-style runtime and
// verify they match their sequential references.
//
//   $ ./parallel_kernels [threads]
#include <cstdio>
#include <cstdlib>

#include "rivertrail/validator.h"

using namespace jsceres::rivertrail;

int main(int argc, char** argv) {
  const unsigned threads = argc > 1 ? unsigned(std::atoi(argv[1])) : 0;
  ThreadPool pool(threads);
  const auto results = validate_all(pool, /*scale=*/1.0);
  std::fputs(render_validation_table(results, pool.size()).c_str(), stdout);
  for (const auto& r : results) {
    if (!r.outputs_match) {
      std::printf("MISMATCH in %s\n", r.kernel.c_str());
      return 1;
    }
  }
  std::printf(
      "\nEvery kernel the dependence analysis classified as (very) easy runs\n"
      "in parallel with results identical to the sequential reference — the\n"
      "latent data parallelism of the paper's title is real.\n");
  return 0;
}
