// Send one script to a running example_serve and print the full outcome.
//
//   example_analyze_client <port> <source> [token] [mode]
//
//   ./example_analyze_client 7333 'console.log(1 + 2);'
//   ./example_analyze_client 7333 "$(cat script.js)" tok-alpha 1
//
// Prints the service state, shed reason (if any), console output, and the
// attempt history the supervisor recorded — everything the wire response
// frame carries. A typed rejection (auth, rate, busy) or a transport
// failure prints as such and exits nonzero.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "net/client.h"
#include "net/frame.h"

int main(int argc, char** argv) {
  using namespace jsceres;

  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: example_analyze_client <port> <source> [token] "
                 "[mode]\n");
    return 2;
  }

  net::ClientOptions options;
  options.port = std::uint16_t(std::strtoul(argv[1], nullptr, 10));
  if (argc > 3) options.token = argv[3];

  net::AnalysisClient client(options);
  std::string error;
  if (!client.connect(&error)) {
    std::fprintf(stderr, "connect failed: %s\n", error.c_str());
    return 1;
  }

  net::WireRequest request;
  request.name = "cli";
  request.source = argv[2];
  request.mode = argc > 4 ? std::uint8_t(std::strtoul(argv[4], nullptr, 10)) : 3;
  request.max_ticks = 10'000'000;
  request.max_memory_bytes = 64u << 20;
  request.memory_estimate = 8u << 20;

  const net::WireResult result = client.roundtrip(request);
  switch (result.kind) {
    case net::WireResult::Kind::Transport:
      std::fprintf(stderr, "transport failure: %s\n",
                   result.transport.c_str());
      return 1;
    case net::WireResult::Kind::ErrorFrame:
      std::fprintf(stderr, "rejected: %s (%s)\n",
                   net::to_string(result.error.code),
                   result.error.message.c_str());
      return 1;
    case net::WireResult::Kind::Outcome:
      break;
  }

  const ServiceOutcome& outcome = result.outcome;
  std::printf("state: %s\n", to_string(outcome.state));
  if (!outcome.shed_reason.empty()) {
    std::printf("shed reason: %s\n", outcome.shed_reason.c_str());
  }
  if (outcome.watchdog_quarantined) {
    std::printf("watchdog: quarantined as stuck\n");
  }
  if (!outcome.session.error.empty()) {
    std::printf("error: %s\n", outcome.session.error.c_str());
  }
  if (!outcome.session.console.empty()) {
    std::printf("console:\n%s", outcome.session.console.c_str());
  }
  std::printf("attempts (%d):\n", outcome.session.attempts);
  for (const AttemptRecord& attempt : outcome.session.history) {
    std::printf("  mode %d -> %s%s%s (cpu %lld us, wall %lld us)\n",
                attempt.mode, attempt.outcome.c_str(),
                attempt.error.empty() ? "" : ": ",
                attempt.error.c_str(),
                static_cast<long long>(attempt.cpu_ns / 1000),
                static_cast<long long>(attempt.wall_ns / 1000));
  }
  return outcome.state == ServiceState::Completed ||
                 outcome.state == ServiceState::Degraded
             ? 0
             : 1;
}
