// Quickstart: run a JavaScript program on the engine with JS-CERES
// instrumentation mode 1 (lightweight profiling) and mode 2 (loop
// profiling) attached, then print where the time went.
//
//   $ ./quickstart
//
// This is the smallest end-to-end use of the public API:
//   parse -> attach hooks -> Interpreter -> inspect profiles.
#include <cstdio>

#include "ceres/lightweight_profiler.h"
#include "ceres/loop_profiler.h"
#include "interp/interpreter.h"
#include "js/parser.h"

using namespace jsceres;

int main() {
  const char* source = R"JS(
// A tiny image-sharpening kernel, written the way the paper's case-study
// apps write hot code: imperative loops over a flat pixel array.
var W = 64;
var H = 64;
var pixels = [];
for (var i = 0; i < W * H; i++) {
  pixels.push((i * 31) % 256);
}

function sharpen(amount) {
  var out = [];
  for (var y = 1; y < H - 1; y++) {
    for (var x = 1; x < W - 1; x++) {
      var p = y * W + x;
      var v = pixels[p] * (1 + 4 * amount) -
              (pixels[p - 1] + pixels[p + 1] + pixels[p - W] + pixels[p + W]) * amount;
      out[p] = v < 0 ? 0 : (v > 255 ? 255 : v);
    }
  }
  return out;
}

var sharpened = sharpen(0.3);
console.log('first pixels:', sharpened[65], sharpened[66], sharpened[67]);
)JS";

  // 1. Parse. The parser assigns every syntactic loop a stable id.
  const js::Program program = js::parse(source, "quickstart.js");
  std::printf("parsed %d syntactic loop(s)\n", program.loop_count());

  // 2. Attach instrumentation (modes compose through a HookList).
  VirtualClock clock;
  ceres::LightweightProfiler lightweight(clock);
  ceres::LoopProfiler loops(clock);
  interp::HookList hooks;
  hooks.add(&lightweight);
  hooks.add(&loops);

  // 3. Run.
  interp::Interpreter interp(program, clock, &hooks);
  interp.run();
  std::printf("%s", interp.console_output().c_str());

  // 4. Inspect.
  std::printf("\ntotal virtual time: %.3f s, in loops: %.3f s (%.0f%%)\n",
              clock.wall_seconds(), lightweight.in_loops_seconds(),
              100.0 * lightweight.in_loops_seconds() / clock.wall_seconds());
  for (const auto& [loop_id, stats] : loops.stats()) {
    const js::LoopSite& site = program.loop(loop_id);
    std::printf("  %-8s line %-3d  instances=%-4lld trips=%6.1f±%-6.1f total=%.3fs\n",
                js::loop_kind_name(site.kind), site.line,
                static_cast<long long>(stats.instances), stats.trips.mean(),
                stats.trips.stddev(), stats.runtime_ns.total() / 1e9);
  }
  return 0;
}
