// Run the analysis engine as a network service.
//
//   example_serve [port] [token=tenant ...]
//
// Binds 127.0.0.1:<port> (default 7333; 0 picks an ephemeral port and
// prints it), starts an AnalysisService behind an AnalysisServer, and
// serves framed requests until EOF on stdin. With no token=tenant pairs
// the server is open: whatever token a client sends becomes its tenant
// name. With pairs, only those tokens are accepted and everything else is
// answered with a typed auth-failed frame.
//
// Pair it with example_analyze_client:
//
//   ./example_serve 7333 &
//   ./example_analyze_client 7333 'console.log(1 + 2);'
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/server.h"
#include "rivertrail/thread_pool.h"
#include "support/service.h"

int main(int argc, char** argv) {
  using namespace jsceres;

  net::ServerOptions server_options;
  server_options.port = 7333;
  if (argc > 1) {
    server_options.port = std::uint16_t(std::strtoul(argv[1], nullptr, 10));
  }
  for (int i = 2; i < argc; ++i) {
    const char* eq = std::strchr(argv[i], '=');
    if (eq == nullptr) {
      std::fprintf(stderr, "usage: example_serve [port] [token=tenant ...]\n");
      return 2;
    }
    const std::string pair = argv[i];
    const std::size_t split = pair.find('=');
    server_options.tenants[pair.substr(0, split)] = pair.substr(split + 1);
  }
  server_options.tenant_requests_per_sec = 50;

  rivertrail::ThreadPool pool(4);
  ServiceOptions service_options;
  service_options.max_active = 4;
  service_options.max_queue = 32;
  service_options.governor.ceiling_bytes = 256u << 20;
  service_options.watchdog_interval_ms = 100;
  service_options.watchdog_stuck_ms = 10'000;
  AnalysisService service(pool, service_options);

  net::AnalysisServer server(service, server_options);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "start failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("serving on 127.0.0.1:%u (%s auth) — EOF on stdin stops\n",
              unsigned(server.port()),
              server_options.tenants.empty() ? "open" : "token");

  // Park until the operator closes stdin; the server threads do the work.
  while (std::fgetc(stdin) != EOF) {
  }

  server.stop();
  const net::ServerStats stats = server.stats();
  std::printf(
      "served: accepted=%zu submitted=%zu responses=%zu error-frames=%zu "
      "malformed=%zu timed-out=%zu rejected=%zu\n",
      stats.connections_accepted, stats.requests_submitted,
      stats.responses_written, stats.error_frames, stats.malformed_frames,
      stats.connections_timed_out, stats.connections_rejected);
  return 0;
}
