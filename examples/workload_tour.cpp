// Full JS-CERES pipeline on one case-study application, chosen by name:
//
//   $ ./workload_tour "Tear-able Cloth"
//   $ ./workload_tour --trace-out tour.trace "Tear-able Cloth"
//   $ ./workload_tour            # lists the 12 workloads
//
// Runs the paper's three staged analyses (SS3): lightweight profiling, loop
// profiling, and dependence analysis; then prints the app's Table 2 row,
// its Table 3 nest rows, and the top dependence warnings. --trace-out FILE
// records the whole tour as a Chrome trace-event file (chrome://tracing,
// ui.perfetto.dev).
#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/classifier.h"
#include "analysis/nest.h"
#include "ceres/abort_advisor.h"
#include "js/loop_scanner.h"
#include "report/tables.h"
#include "support/obs.h"
#include "workloads/runner.h"

using namespace jsceres;

int main(int argc, char** argv) {
  std::string trace_out;
  const char* name = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      name = argv[i];
    }
  }
  if (name == nullptr) {
    std::printf(
        "usage: workload_tour [--trace-out FILE] <name>\navailable "
        "workloads:\n");
    for (const auto& w : workloads::all_workloads()) {
      std::printf("  %-20s %-18s %s\n", w.name.c_str(), w.category.c_str(),
                  w.description.c_str());
    }
    return 0;
  }
  if (!trace_out.empty()) obs::TraceRecorder::instance().start();
  obs::TraceRecorder::instance().set_thread_name("tour-main");

  const workloads::Workload& workload = workloads::workload_by_name(name);
  std::printf("%s — %s (%s)\n\n", workload.name.c_str(),
              workload.description.c_str(), workload.url.c_str());

  // Mode 1: how much of the run is loops at all?
  auto light = workloads::run_workload(workload, workloads::Mode::Lightweight);
  const auto row = light.table2_row();
  std::printf("mode 1 (lightweight): total %.2fs, active %.2fs, in loops %.2fs\n",
              row.total_s, row.active_s, row.in_loops_s);
  std::printf("  paper reference:    total %.0fs, active %.2fs, in loops %.2fs\n\n",
              workload.paper.total_s, workload.paper.active_s,
              workload.paper.in_loops_s);

  // Modes 2+3: the Table 3 rows.
  const auto rows = report::build_table3_rows(workload);
  std::printf("mode 2+3 (loop profile + dependence): reported nests\n");
  for (const auto& nest : rows) {
    std::printf(
        "  line %-4d  %5.1f%% of loop time, %lld instance(s), trips %.1f±%.1f\n"
        "             divergence=%s dom=%s deps=%s difficulty=%s\n",
        nest.root_line, nest.share * 100, static_cast<long long>(nest.instances),
        nest.trips_mean, nest.trips_stddev,
        analysis::divergence_label(nest.divergence), nest.dom_access ? "yes" : "no",
        analysis::difficulty_label(nest.breaking_deps),
        analysis::difficulty_label(nest.difficulty));
  }

  // A taste of the raw mode-3 warnings.
  auto dep = workloads::run_workload(workload, workloads::Mode::Dependence);
  std::printf("\nmode 3 warning sites: %zu distinct; first few:\n",
              dep.dependence->warnings().size());
  std::size_t shown = 0;
  for (const auto& warning : dep.dependence->warnings()) {
    if (shown++ == 6) break;
    std::printf("  %s\n", warning.render(dep.program).c_str());
  }

  // SS5.3: what a speculative parallelizer would tell the developer about
  // each reported nest.
  std::printf("\n");
  for (const int root : dep.nest_roots) {
    const auto spec = ceres::advise(dep.program, *dep.dependence, root, nullptr);
    std::fputs(spec.render(dep.program).c_str(), stdout);
  }

  if (!trace_out.empty()) {
    obs::TraceRecorder::instance().stop();
    if (obs::TraceRecorder::instance().write_chrome_trace(trace_out)) {
      std::printf("\ntrace written to %s\n", trace_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write trace to %s\n", trace_out.c_str());
      return 1;
    }
  }
  return 0;
}
