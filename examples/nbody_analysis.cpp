// The paper's Fig. 6 walkthrough, end to end: run the N-body step under
// instrumentation mode 3 (dependence analysis) focused on the inner for
// loop, and print the warnings in the paper's
// "while(line 24) ok ok -> for(line 6) ok dependence" format.
//
// Then re-run the refactored version (loop body extracted into a function,
// the paper's forEach-equivalent) and show that the warnings on `p`
// disappear while the center-of-mass flow dependence stands.
#include <cstdio>

#include "ceres/dependence_analyzer.h"
#include "interp/interpreter.h"
#include "js/parser.h"

using namespace jsceres;

namespace {

const char* kOriginal = R"JS(
var dT = 0.1;
var bodies = [];
for (var i0 = 0; i0 < 8; i0++) {
  bodies.push({x: i0, y: 0, vX: 0, vY: 0, fX: 1, fY: 1, m: 1});
}
function Particle() { this.x = 0; this.y = 0; this.m = 0; }
function step() {
  var com = new Particle();
  for (var i = 0; i < bodies.length; i++) {
    var p = bodies[i];
    p.vX += p.fX / p.m * dT;
    p.vY += p.fY / p.m * dT;
    p.x += p.vX * dT;
    p.y += p.vY * dT;
    com.m = com.m + p.m;
    com.x = (com.x * (com.m - p.m) + p.x * p.m) / com.m;
    com.y = (com.y * (com.m - p.m) + p.y * p.m) / com.m;
  }
  return com;
}
var steps = 0;
while (steps < 5) {
  var com = step();
  steps = steps + 1;
}
)JS";

const char* kRefactored = R"JS(
var dT = 0.1;
var bodies = [];
for (var i0 = 0; i0 < 8; i0++) {
  bodies.push({x: i0, y: 0, vX: 0, vY: 0, fX: 1, fY: 1, m: 1});
}
function Particle() { this.x = 0; this.y = 0; this.m = 0; }
function step() {
  var com = new Particle();
  function body(i) {
    var p = bodies[i];
    p.vX += p.fX / p.m * dT;
    p.vY += p.fY / p.m * dT;
    p.x += p.vX * dT;
    p.y += p.vY * dT;
    com.m = com.m + p.m;
    com.x = (com.x * (com.m - p.m) + p.x * p.m) / com.m;
    com.y = (com.y * (com.m - p.m) + p.y * p.m) / com.m;
  }
  for (var i = 0; i < bodies.length; i++) { body(i); }
  return com;
}
var steps = 0;
while (steps < 5) {
  var com = step();
  steps = steps + 1;
}
)JS";

void analyze(const char* title, const char* source) {
  js::Program program = js::parse(source, "nbody.js");
  // Focus on the for loop inside step() — loop id 2 (the setup for is 1).
  ceres::DependenceAnalyzer::Options options;
  options.focus_loop_id = 2;
  ceres::DependenceAnalyzer analyzer(program, options);
  VirtualClock clock;
  interp::Interpreter interp(program, clock, &analyzer);
  interp.run();
  std::printf("--- %s ---\n%s\n", title, analyzer.report().c_str());
}

}  // namespace

int main() {
  std::printf("Paper Fig. 6: N-body simulation step under dependence analysis\n\n");
  analyze("original (var p shared through function scoping)", kOriginal);
  analyze("refactored (body extracted into a function; p private, com still flagged)",
          kRefactored);
  std::printf(
      "Interpretation (paper SS3.3): the output dependences on p vanish after\n"
      "the extraction; the flow dependence on the center of mass is real and\n"
      "must be re-expressed (e.g. as a reduction) to parallelize the loop —\n"
      "which is exactly what src/rivertrail/kernels.cpp::nbody_step_par does.\n");
  return 0;
}
