// The SS5.3 refactoring tool as a standalone demo: convert canonical
// imperative array loops to forEach, show the before/after source, and prove
// behaviour is unchanged by running both versions.
#include <cstdio>

#include "interp/interpreter.h"
#include "js/parser.h"
#include "js/refactor.h"

using namespace jsceres;

namespace {

std::string run(const std::string& source) {
  js::Program program = js::parse(source);
  VirtualClock clock;
  interp::Interpreter interp(program, clock);
  interp.run();
  return interp.console_output();
}

}  // namespace

int main() {
  const std::string source = R"JS(
var prices = [12.5, 3.2, 8.9, 15.0, 4.4];
var taxed = [];
taxed.length = prices.length;
for (var i = 0; i < prices.length; i++) {
  var withTax = prices[i] * 1.2;
  taxed[i] = withTax;
}
var total = 0;
for (var j = 0; j < taxed.length; j++) {
  total += taxed[j];
}
console.log('total with tax:', total.toFixed(2));
for (var k = 0; k < prices.length; k++) {
  if (prices[k] > 100) { break; }
}
)JS";

  std::printf("--- before ---\n%s\n", source.c_str());

  js::Program program = js::parse(source);
  const js::RefactorReport report = js::to_functional(program);

  std::printf("--- after (%d of %d candidates rewritten) ---\n%s\n",
              report.rewritten, report.candidates, report.source.c_str());
  for (const auto& note : report.notes) {
    std::printf("note: %s\n", note.c_str());
  }

  const std::string before = run(source);
  const std::string after = run(report.source);
  std::printf("\nbehaviour preserved: %s\n  before: %s  after:  %s",
              before == after ? "yes" : "NO", before.c_str(), after.c_str());
  return before == after ? 0 : 1;
}
