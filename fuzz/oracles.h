#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace jsceres::fuzz {

/// Outcome of one oracle battery over one generated program. `ok` means
/// every applicable oracle held; otherwise `oracle` names the first one
/// that failed and `detail` says how the two executions diverged.
struct OracleOutcome {
  bool ok = true;
  std::string oracle;
  std::string detail;
};

struct OracleOptions {
  /// The program ends in the event-loop epilogue (GenOptions::use_timers):
  /// run it under a dom::Page and add the serial-vs-frame-graph oracle.
  bool has_timers = false;
  /// Event-loop horizon for timer programs, virtual milliseconds.
  std::int64_t horizon_ms = 200;
};

/// Run the differential oracle battery over `source`:
///  1. mode invariance — uninstrumented vs lightweight-profiled runs must
///     agree on virtual CPU/wall time and console output (paper §3.1: the
///     profiling modes observe, they must not perturb);
///  2. analyzer determinism — two independent dependence-analysis runs must
///     produce byte-identical reports, and every recorded characterization
///     must have the compact-delta shape the vector algebra guarantees;
///  3. serial vs frame-graph event loop (timer programs only) — identical
///     console output and virtual clocks with the pipeline on or off;
///  4. limit recovery — a run under a tight sandbox either completes or
///     trips a recoverable EngineError, after which the interpreter's
///     argument stack is empty and a second run still behaves.
/// A program that fails to parse is reported as a generator defect.
OracleOutcome check_program(const std::string& source,
                            const OracleOptions& options = {});

/// Supervision oracle: run `source` under a sweep of cancellation points and
/// deadlines — no cancel, an already-expired deadline, and an explicit cancel
/// latched at the K-th cooperative observation for a spread of K — under the
/// same tight sandbox as the limit-recovery oracle. Every run must end in
/// exactly one of {completed, recoverable EngineError, CancelledError}; the
/// interpreter's argument stack must be empty afterwards and the same engine
/// object must accept a re-run (which may legitimately trip or observe the
/// still-latched cancel again). Called by check_program as oracle 5 and
/// directly by the nightly fuzz job's session mode.
OracleOutcome check_supervised(const std::string& source,
                               const OracleOptions& options = {});

/// One case of the hostile-input demo suite: a program (or raw source)
/// engineered to blow a specific resource, plus the limit configuration
/// that must contain it.
struct HostileCase {
  std::string name;
  std::string source;
  /// Which sandbox knob contains this case (documentation; the runner
  /// configures EngineLimits from the fields below).
  std::string contained_by;
  std::size_t max_memory_bytes = 0;
  std::size_t max_array_length = 0;
  std::int64_t max_wall_ms = 0;
  std::int64_t max_ticks = -1;
  bool expect_parse_error = false;
};

struct HostileReport {
  std::string name;
  bool recovered = false;   // tripped a recoverable error AND engine reusable
  std::string error;        // the error message observed
};

/// The five hostile inputs named by the sandbox acceptance criteria: deep
/// nesting, an unbounded allocation loop, a runaway while(true) (both the
/// tick-budget and the wall-clock watchdog flavour), a 10k-property object,
/// and pathological array growth.
std::vector<HostileCase> hostile_suite();

/// Run one hostile case under its limits; `recovered` requires the expected
/// recoverable error type (ParseError/LexError for front-end cases,
/// EngineError for runtime cases), a clean argument stack afterwards, and a
/// working second run on the same engine object.
HostileReport run_hostile_case(const HostileCase& hostile);

}  // namespace jsceres::fuzz
