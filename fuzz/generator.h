#pragma once

#include <cstdint>
#include <string>

namespace jsceres::fuzz {

/// Knobs for one generated program. The defaults produce programs that run
/// in well under a millisecond so the smoke mode can afford hundreds of
/// them per second together with their differential re-runs.
struct GenOptions {
  /// Maximum statement-nesting depth (loops/ifs inside loops/ifs).
  int max_depth = 3;
  /// Maximum statements emitted per block.
  int max_block_statements = 6;
  /// Number of helper functions declared up front (each may call only
  /// earlier ones, so generated call graphs are acyclic).
  int max_functions = 3;
  /// Emit the event-loop epilogue (setTimeout chains + a bounded
  /// requestAnimationFrame loop). Programs with this set must run under a
  /// dom::Page; without it they are plain scripts.
  bool use_timers = false;
};

/// Generate one deterministic, terminating program of the engine's JS
/// subset from `seed`. Every loop is bounded by a literal trip count and
/// every `throw` sits inside a `try`, so a generated program always runs to
/// completion and ends by logging a "CK:<checksum>" line that folds every
/// live variable into one value — the differential oracles compare that
/// line (plus the virtual clocks) across engine configurations.
std::string generate_program(std::uint64_t seed, const GenOptions& options = {});

}  // namespace jsceres::fuzz
