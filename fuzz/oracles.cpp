#include "fuzz/oracles.h"

#include <string>

#include "ceres/dependence_analyzer.h"
#include "ceres/lightweight_profiler.h"
#include "dom/page.h"
#include "interp/interpreter.h"
#include "js/lexer.h"
#include "js/parser.h"
#include "rivertrail/thread_pool.h"
#include "support/cancel.h"
#include "support/clock.h"
#include "support/limits.h"

namespace jsceres::fuzz {

namespace {

/// Everything the oracles compare about one execution. Virtual time is part
/// of the observable surface: the whole reproduction rests on the clocks
/// being a pure function of the executed program, so any instrumentation or
/// scheduling mode that shifts them is a bug even when console output agrees.
struct RunResult {
  bool engine_error = false;
  std::string error;
  std::string console;
  std::int64_t cpu_ns = 0;
  std::int64_t wall_ns = 0;
};

RunResult run_once(const js::Program& program, interp::ExecutionHooks* hooks,
                   bool with_page, bool frame_graph, std::int64_t horizon_ms,
                   const interp::InterpreterConfig& config = {}) {
  RunResult result;
  VirtualClock clock;
  interp::Interpreter interp(program, clock, hooks, config);
  try {
    if (with_page) {
      dom::Page page(interp);
      if (frame_graph) {
        rivertrail::ThreadPool pool(2);
        page.event_loop().enable_frame_graph(pool);
        interp.run();
        page.event_loop().run(horizon_ms);
      } else {
        interp.run();
        page.event_loop().run(horizon_ms);
      }
    } else {
      interp.run();
    }
  } catch (const interp::EngineError& e) {
    result.engine_error = true;
    result.error = e.what();
  }
  result.console = interp.console_output();
  result.cpu_ns = clock.cpu_ns();
  result.wall_ns = clock.wall_ns();
  return result;
}

/// Empty detail == the runs agree.
std::string diff_runs(const RunResult& a, const RunResult& b) {
  if (a.engine_error != b.engine_error || a.error != b.error) {
    return "error divergence: [" + a.error + "] vs [" + b.error + "]";
  }
  if (a.console != b.console) {
    return "console divergence: [" + a.console + "] vs [" + b.console + "]";
  }
  if (a.cpu_ns != b.cpu_ns) {
    return "cpu clock divergence: " + std::to_string(a.cpu_ns) + " vs " +
           std::to_string(b.cpu_ns) + " ns";
  }
  if (a.wall_ns != b.wall_ns) {
    return "wall clock divergence: " + std::to_string(a.wall_ns) + " vs " +
           std::to_string(b.wall_ns) + " ns";
  }
  return {};
}

OracleOutcome fail(std::string oracle, std::string detail) {
  return OracleOutcome{false, std::move(oracle), std::move(detail)};
}

}  // namespace

OracleOutcome check_program(const std::string& source,
                            const OracleOptions& options) {
  js::Program program;
  try {
    program = js::parse(source, "<fuzz>");
  } catch (const js::ParseError& e) {
    return fail("generator-validity", std::string("parse failed: ") + e.what());
  } catch (const js::LexError& e) {
    return fail("generator-validity", std::string("lex failed: ") + e.what());
  }

  const bool page = options.has_timers;
  const std::int64_t horizon = options.horizon_ms;

  // 1. Mode invariance: lightweight profiling must not perturb execution.
  {
    const RunResult plain = run_once(program, nullptr, page, false, horizon);
    // The profiler reads the run's own clock, so this twin of run_once is
    // built by hand around the shared VirtualClock.
    RunResult profiled;
    {
      VirtualClock clock;
      ceres::LightweightProfiler profiler(clock);
      interp::Interpreter interp(program, clock, &profiler);
      try {
        if (page) {
          dom::Page dom_page(interp);
          interp.run();
          dom_page.event_loop().run(horizon);
        } else {
          interp.run();
        }
      } catch (const interp::EngineError& e) {
        profiled.engine_error = true;
        profiled.error = e.what();
      }
      profiled.console = interp.console_output();
      profiled.cpu_ns = clock.cpu_ns();
      profiled.wall_ns = clock.wall_ns();
      if (profiler.in_loops_ns() > clock.wall_ns()) {
        return fail("mode-invariance", "in-loops time exceeds wall time");
      }
    }
    if (const std::string detail = diff_runs(plain, profiled); !detail.empty()) {
      return fail("mode-invariance", detail);
    }
  }

  // 2. Dependence-analysis determinism + compact-delta shape.
  {
    std::string reports[2];
    for (int round = 0; round < 2; ++round) {
      ceres::DependenceAnalyzer analyzer(program);
      VirtualClock clock;
      interp::Interpreter interp(program, clock, &analyzer);
      try {
        interp.run();
      } catch (const interp::EngineError&) {
        // An uncaught JS throw is legal fuzz output; both rounds see it.
      }
      reports[round] = analyzer.report();
      for (const auto& warning : analyzer.warnings()) {
        bool seen_dep = false;
        for (const ceres::LevelFlags& level : warning.characterization.levels) {
          if (level.instance_dep && !level.iteration_dep) {
            return fail("stamp-shape", "dependence-ok level in " +
                                           warning.render(program));
          }
          if (seen_dep && !(level.instance_dep && level.iteration_dep)) {
            return fail("stamp-shape", "non-monotone delta in " +
                                           warning.render(program));
          }
          if (level.instance_dep || level.iteration_dep) seen_dep = true;
        }
      }
    }
    if (reports[0] != reports[1]) {
      return fail("analyzer-determinism", "reports differ across re-runs");
    }
  }

  // 3. Serial vs frame-graph event loop (timer programs only).
  if (page) {
    const RunResult serial = run_once(program, nullptr, true, false, horizon);
    const RunResult pipelined = run_once(program, nullptr, true, true, horizon);
    if (const std::string detail = diff_runs(serial, pipelined);
        !detail.empty()) {
      return fail("event-loop", detail);
    }
  }

  // 4. Sandbox recovery: a tight-limit run either completes or trips a
  // recoverable EngineError, and the engine object stays usable.
  {
    interp::InterpreterConfig config;
    config.max_ticks = 2'000'000;
    config.limits.max_memory_bytes = 4u << 20;
    VirtualClock clock;
    interp::Interpreter interp(program, clock, nullptr, config);
    bool tripped = false;
    try {
      interp.run();
    } catch (const interp::EngineError&) {
      tripped = true;
    } catch (...) {
      return fail("limit-recovery", "non-EngineError escaped a limited run");
    }
    if (interp.debug_arg_stack_in_use() != 0) {
      return fail("limit-recovery",
                  "argument stack not empty after " +
                      std::string(tripped ? "a limit trip" : "completion"));
    }
    try {
      interp.run();  // re-entry arms a fresh budget window
    } catch (const interp::EngineError&) {
      // A second trip is fine; crashing or corrupting state is not.
    } catch (...) {
      return fail("limit-recovery", "non-EngineError escaped the re-run");
    }
    if (interp.debug_arg_stack_in_use() != 0) {
      return fail("limit-recovery", "argument stack not empty after re-run");
    }
  }

  // 5. Supervision: cancellation at every flavour of trigger is contained
  // exactly like a limit trip.
  if (const OracleOutcome supervised = check_supervised(source, options);
      !supervised.ok) {
    return supervised;
  }

  return OracleOutcome{};
}

OracleOutcome check_supervised(const std::string& source,
                               const OracleOptions& options) {
  js::Program program;
  try {
    program = js::parse(source, "<fuzz>");
  } catch (const js::ParseError& e) {
    return fail("generator-validity", std::string("parse failed: ") + e.what());
  } catch (const js::LexError& e) {
    return fail("generator-validity", std::string("lex failed: ") + e.what());
  }

  // K = 0 encodes "no cancel at all"; K = -1 encodes "deadline already
  // expired before the first tick". Positive K latches an explicit cancel at
  // the K-th cooperative observation, so the sweep lands the cancellation on
  // a spread of interpreter tick probes without wall-clock races. Programs
  // that finish before the K-th observation simply complete — that is a
  // legal outcome, not a hole in the sweep.
  static constexpr std::int64_t kCancelPoints[] = {0,  -1, 1,  2,  4,
                                                   8,  16, 64, 256};

  for (const std::int64_t point : kCancelPoints) {
    CancelSource cancel_source;
    if (point < 0) {
      cancel_source.expire_now();
    } else if (point > 0) {
      cancel_source.cancel_after_observations(point);
    }

    interp::InterpreterConfig config;
    config.max_ticks = 2'000'000;
    config.limits.max_memory_bytes = 4u << 20;
    config.cancel = CancelToken(cancel_source);
    VirtualClock clock;
    interp::Interpreter interp(program, clock, nullptr, config);

    const std::string where = " (cancel point " + std::to_string(point) + ")";
    try {
      interp.run();
    } catch (const CancelledError&) {
      // cancelled: the legal third outcome.
    } catch (const interp::EngineError&) {
      // recoverable limit trip (or uncaught JS throw): legal.
    } catch (...) {
      return fail("supervision", "non-EngineError escaped" + where);
    }
    if (interp.debug_arg_stack_in_use() != 0) {
      return fail("supervision", "argument stack not empty" + where);
    }

    // Reuse proof: reset the source (deadline expiry clears; an explicit
    // cancel stays latched by design) and re-enter the same engine object.
    cancel_source.reset();
    try {
      interp.run();
    } catch (const interp::EngineError&) {
      // A second trip — including the still-latched cancel — is fine.
    } catch (...) {
      return fail("supervision", "non-EngineError escaped the re-run" + where);
    }
    if (interp.debug_arg_stack_in_use() != 0) {
      return fail("supervision",
                  "argument stack not empty after re-run" + where);
    }
  }

  // Timer programs: also land cancels on the event loop's dispatch boundary.
  if (options.has_timers) {
    for (const std::int64_t point : {std::int64_t(1), std::int64_t(3),
                                     std::int64_t(9)}) {
      CancelSource cancel_source;
      cancel_source.cancel_after_observations(point);
      interp::InterpreterConfig config;
      config.max_ticks = 2'000'000;
      config.limits.max_memory_bytes = 4u << 20;
      config.cancel = CancelToken(cancel_source);
      VirtualClock clock;
      interp::Interpreter interp(program, clock, nullptr, config);
      const std::string where =
          " (event-loop cancel point " + std::to_string(point) + ")";
      try {
        dom::Page page(interp);
        interp.run();
        page.event_loop().run(options.horizon_ms, config.cancel);
      } catch (const interp::EngineError&) {
        // CancelledError or a limit trip: both contained.
      } catch (...) {
        return fail("supervision", "non-EngineError escaped" + where);
      }
      if (interp.debug_arg_stack_in_use() != 0) {
        return fail("supervision", "argument stack not empty" + where);
      }
    }
  }

  return OracleOutcome{};
}

// ---------------------------------------------------------------------------
// Hostile-input demo suite
// ---------------------------------------------------------------------------

std::vector<HostileCase> hostile_suite() {
  std::vector<HostileCase> cases;

  HostileCase nesting;
  nesting.name = "deep-nesting";
  nesting.source = std::string(2000, '(') + "1" + std::string(2000, ')') + ";";
  nesting.contained_by = "max_parse_depth";
  nesting.expect_parse_error = true;
  cases.push_back(std::move(nesting));

  HostileCase alloc;
  alloc.name = "alloc-loop";
  alloc.source = "var a = []; while (true) { a.push(a.length); }";
  alloc.contained_by = "max_memory_bytes";
  alloc.max_memory_bytes = 4u << 20;
  cases.push_back(std::move(alloc));

  HostileCase ticks;
  ticks.name = "runaway-ticks";
  ticks.source = "var x = 0; while (true) { x = x + 1; }";
  ticks.contained_by = "max_ticks";
  ticks.max_ticks = 2'000'000;
  cases.push_back(std::move(ticks));

  HostileCase wall;
  wall.name = "runaway-wall";
  wall.source = "var x = 0; while (true) { x = x + 1; }";
  wall.contained_by = "max_wall_ms";
  wall.max_wall_ms = 150;
  cases.push_back(std::move(wall));

  HostileCase props;
  props.name = "10k-properties";
  props.source =
      "var o = {}; for (var i = 0; i < 10000; i++) { o[\"k\" + i] = i; }";
  props.contained_by = "max_memory_bytes";
  props.max_memory_bytes = 256u << 10;
  cases.push_back(std::move(props));

  HostileCase growth;
  growth.name = "array-growth";
  growth.source = "var a = []; a[50000000] = 1;";
  growth.contained_by = "max_array_length";
  growth.max_array_length = 1'000'000;
  cases.push_back(std::move(growth));

  return cases;
}

HostileReport run_hostile_case(const HostileCase& hostile) {
  HostileReport report;
  report.name = hostile.name;

  EngineLimits limits;
  limits.max_memory_bytes = hostile.max_memory_bytes;
  limits.max_array_length = hostile.max_array_length;
  limits.max_wall_ms = hostile.max_wall_ms;

  js::Program program;
  try {
    program = js::parse(hostile.source, "<hostile:" + hostile.name + ">",
                        limits);
  } catch (const js::ParseError& e) {
    report.recovered = hostile.expect_parse_error;
    report.error = e.what();
    return report;
  } catch (const js::LexError& e) {
    report.recovered = hostile.expect_parse_error;
    report.error = e.what();
    return report;
  }
  if (hostile.expect_parse_error) {
    report.error = "expected a front-end error, but the source parsed";
    return report;
  }

  interp::InterpreterConfig config;
  config.max_ticks = hostile.max_ticks;
  config.limits = limits;
  VirtualClock clock;
  interp::Interpreter interp(program, clock, nullptr, config);
  try {
    interp.run();
    report.error = "ran to completion without tripping a limit";
    return report;
  } catch (const interp::EngineError& e) {
    report.error = e.what();
  } catch (...) {
    report.error = "non-EngineError escaped";
    return report;
  }

  // Recovery proof: clean machine state, and the same engine object accepts
  // another run (which may legitimately trip again).
  if (interp.debug_arg_stack_in_use() != 0) {
    report.error += " [argument stack not unwound]";
    return report;
  }
  try {
    interp.run();
  } catch (const interp::EngineError&) {
  } catch (...) {
    report.error += " [re-run crashed]";
    return report;
  }
  report.recovered = true;
  return report;
}

}  // namespace jsceres::fuzz
