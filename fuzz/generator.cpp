#include "fuzz/generator.h"

#include <string>
#include <vector>

#include "support/rng.h"

namespace jsceres::fuzz {

namespace {

/// Recursive-descent program builder. Termination is structural: loops use
/// dedicated counter variables (never in the assignable pool) with literal
/// bounds, functions may only call lower-numbered functions, and `throw`
/// only appears under a `try`. Within those constraints the generator
/// leans into what the sandbox and the instrumentation care about: shape
/// transitions (object literals + later property adds), dictionary-mode
/// objects, computed property keys, array growth through pushes and
/// out-of-bounds stores, string accumulation, closures, and try/catch
/// control flow.
class ProgramBuilder {
 public:
  ProgramBuilder(std::uint64_t seed, const GenOptions& options)
      : rng_(seed), options_(options) {}

  std::string build() {
    emit("var sink = 0;");
    const int scalars = 2 + int(rng_.next_below(3));
    for (int i = 0; i < scalars; ++i) {
      scalars_.push_back("a" + std::to_string(i));
      emit("var " + scalars_.back() + " = " + small_number() + ";");
    }
    const int arrays = 1 + int(rng_.next_below(2));
    for (int i = 0; i < arrays; ++i) {
      arrays_.push_back("arr" + std::to_string(i));
      emit("var " + arrays_.back() + " = [" + small_number() + ", " +
           small_number() + "];");
    }
    const int objects = 1 + int(rng_.next_below(2));
    for (int i = 0; i < objects; ++i) {
      objects_.push_back("obj" + std::to_string(i));
      emit("var " + objects_.back() + " = {p0: 0, p1: " + small_number() +
           ", p2: 0};");
    }
    emit("var str0 = \"s\";");

    const int fn_count = 1 + int(rng_.next_below(std::uint64_t(
                                 options_.max_functions > 0
                                     ? options_.max_functions
                                     : 1)));
    for (int i = 0; i < fn_count; ++i) emit_function(i);

    const int top = 2 + int(rng_.next_below(
                            std::uint64_t(options_.max_block_statements)));
    for (int i = 0; i < top; ++i) emit_statement(0);

    emit_checksum_tail();
    if (options_.use_timers) emit_timer_epilogue();
    return out_;
  }

 private:
  // --- expressions (always numeric-valued) ---

  std::string small_number() {
    return std::to_string(rng_.next_between(0, 9));
  }

  std::string expr(int depth) {
    const std::uint64_t pick = rng_.next_below(depth >= 2 ? 5 : 10);
    switch (pick) {
      case 0:
        return small_number();
      case 1:
        return scalars_[rng_.next_below(scalars_.size())];
      case 2:
        return counters_.empty()
                   ? small_number()
                   : counters_[rng_.next_below(counters_.size())];
      case 3:
        return arrays_[rng_.next_below(arrays_.size())] + ".length";
      case 4:
        return objects_[rng_.next_below(objects_.size())] + ".p" +
               std::to_string(rng_.next_below(3));
      case 5:
      case 6: {
        static const char* ops[] = {" + ", " - ", " * "};
        return "(" + expr(depth + 1) + ops[rng_.next_below(3)] +
               expr(depth + 1) + ")";
      }
      case 7:
        // Keep values bounded: repeated multiplication otherwise overflows
        // into Infinity and erases checksum discrimination.
        return "(" + expr(depth + 1) + " % " +
               std::to_string(rng_.next_between(3, 97)) + ")";
      case 8: {
        // Element reads may hit holes; `|| 0` keeps NaN out of checksums.
        const std::string& arr = arrays_[rng_.next_below(arrays_.size())];
        return "((" + arr + "[" + index_expr() + "]) || 0)";
      }
      default:
        if (!functions_.empty()) {
          const std::size_t f = rng_.next_below(functions_.size());
          std::string call = "f" + std::to_string(f) + "(";
          for (int a = 0; a < fn_arity_[f]; ++a) {
            if (a > 0) call += ", ";
            call += expr(depth + 1);
          }
          return call + ")";
        }
        return small_number();
    }
  }

  std::string index_expr() {
    if (!counters_.empty() && rng_.next_below(2) == 0) {
      return "(" + counters_[rng_.next_below(counters_.size())] + " % 8)";
    }
    return std::to_string(rng_.next_below(8));
  }

  // --- statements ---

  void emit_statement(int depth) {
    const bool can_nest = depth < options_.max_depth;
    const std::uint64_t pick = rng_.next_below(can_nest ? 12 : 8);
    switch (pick) {
      case 0:
        emit("sink = sink + " + expr(0) + ";");
        break;
      case 1: {
        const std::string& v = scalars_[rng_.next_below(scalars_.size())];
        emit(v + (rng_.next_below(2) == 0 ? " = " : " += ") + expr(0) + ";");
        break;
      }
      case 2:
        emit(arrays_[rng_.next_below(arrays_.size())] + ".push(" + expr(0) +
             ");");
        break;
      case 3:
        emit(arrays_[rng_.next_below(arrays_.size())] + "[" + index_expr() +
             "] = " + expr(0) + ";");
        break;
      case 4:
        emit(objects_[rng_.next_below(objects_.size())] + ".p" +
             std::to_string(rng_.next_below(3)) + " = " + expr(0) + ";");
        break;
      case 5:
        // Computed key over the fixed key set: exercises computed-key
        // interning and keeps every property numeric.
        emit(objects_[rng_.next_below(objects_.size())] + "[\"p\" + (" +
             index_expr() + " % 3)] = " + expr(0) + ";");
        break;
      case 6:
        emit("str0 = str0 + \"" +
             std::string(1, char('a' + rng_.next_below(26))) + "\";");
        break;
      case 7:
        if (!functions_.empty()) {
          const std::size_t f = rng_.next_below(functions_.size());
          std::string call = "sink = sink + f" + std::to_string(f) + "(";
          for (int a = 0; a < fn_arity_[f]; ++a) {
            if (a > 0) call += ", ";
            call += expr(0);
          }
          emit(call + ");");
        } else {
          emit("sink = sink + 1;");
        }
        break;
      case 8:
        emit_for(depth);
        break;
      case 9:
        emit_while(depth);
        break;
      case 10:
        emit_if(depth);
        break;
      default:
        emit_try(depth);
        break;
    }
  }

  void emit_block(int depth) {
    const int n = 1 + int(rng_.next_below(
                          std::uint64_t(options_.max_block_statements)));
    for (int i = 0; i < n; ++i) emit_statement(depth);
  }

  void emit_for(int depth) {
    const std::string c = "i" + std::to_string(next_counter_++);
    const std::string bound = std::to_string(rng_.next_between(2, 6));
    emit("for (var " + c + " = 0; " + c + " < " + bound + "; " + c + "++) {");
    indent_++;
    counters_.push_back(c);
    emit_block(depth + 1);
    counters_.pop_back();
    indent_--;
    emit("}");
  }

  void emit_while(int depth) {
    const std::string c = "w" + std::to_string(next_counter_++);
    const std::string bound = std::to_string(rng_.next_between(2, 5));
    emit("var " + c + " = 0;");
    const bool do_while = rng_.next_below(3) == 0;
    emit(do_while ? "do {" : "while (" + c + " < " + bound + ") {");
    indent_++;
    // Increment first so a `continue`-free body can never skip it; the
    // counter is not in the assignable pool, so no other statement writes it.
    emit(c + " = " + c + " + 1;");
    counters_.push_back(c);
    emit_block(depth + 1);
    counters_.pop_back();
    indent_--;
    emit(do_while ? "} while (" + c + " < " + bound + ");" : "}");
  }

  void emit_if(int depth) {
    emit("if (" + expr(0) + " > " + std::to_string(rng_.next_between(0, 40)) +
         ") {");
    indent_++;
    emit_block(depth + 1);
    indent_--;
    if (rng_.next_below(2) == 0) {
      emit("} else {");
      indent_++;
      emit_block(depth + 1);
      indent_--;
    }
    emit("}");
  }

  void emit_try(int depth) {
    emit("try {");
    indent_++;
    if (rng_.next_below(2) == 0) {
      emit("if (" + expr(0) + " > " + std::to_string(rng_.next_between(5, 30)) +
           ") { throw \"boom\"; }");
    }
    emit_block(depth + 1);
    indent_--;
    emit("} catch (e) {");
    indent_++;
    emit("sink = sink + 1;");
    indent_--;
    emit("}");
  }

  void emit_function(int index) {
    const int arity = int(rng_.next_below(3));
    std::string header = "function f" + std::to_string(index) + "(";
    std::vector<std::string> params;
    for (int a = 0; a < arity; ++a) {
      params.push_back("x" + std::to_string(a));
      if (a > 0) header += ", ";
      header += params.back();
    }
    emit(header + ") {");
    indent_++;
    // The body sees params as extra scalars; the swap confines them (and
    // the acyclic call rule: only already-declared functions are callable).
    std::vector<std::string> saved_scalars = scalars_;
    for (const std::string& p : params) scalars_.push_back(p);
    emit("var t = " + expr(0) + ";");
    scalars_.push_back("t");
    const int n = 1 + int(rng_.next_below(3));
    for (int i = 0; i < n; ++i) emit_statement(1);
    emit("return t;");
    scalars_ = std::move(saved_scalars);
    indent_--;
    emit("}");
    functions_.push_back("f" + std::to_string(index));
    fn_arity_.push_back(arity);
  }

  void emit_checksum_tail() {
    emit("var ck = sink;");
    for (const std::string& v : scalars_) emit("ck = ck + " + v + ";");
    for (const std::string& a : arrays_) {
      const std::string c = "c" + std::to_string(next_counter_++);
      emit("for (var " + c + " = 0; " + c + " < " + a + ".length; " + c +
           "++) { ck = ck + ((" + a + "[" + c + "]) || 0); }");
    }
    for (const std::string& o : objects_) {
      emit("ck = ck + " + o + ".p0 + " + o + ".p1 + " + o + ".p2;");
    }
    emit("ck = ck + str0.length;");
    emit("console.log(\"CK:\" + ck);");
  }

  void emit_timer_epilogue() {
    emit("var frames = 0;");
    emit("function onFrame() {");
    indent_++;
    emit("sink = sink + " + expr(0) + ";");
    emit("frames = frames + 1;");
    emit("if (frames < " + std::to_string(rng_.next_between(2, 5)) +
         ") { requestAnimationFrame(onFrame); }");
    indent_--;
    emit("}");
    emit("requestAnimationFrame(onFrame);");
    const int timers = 1 + int(rng_.next_below(3));
    for (int i = 0; i < timers; ++i) {
      emit("setTimeout(function () { sink = sink + " + expr(0) + "; }, " +
           std::to_string(rng_.next_between(1, 40)) + ");");
    }
    // Final task: re-log the checksum after every timer/frame ran so the
    // oracles can compare post-event-loop state too.
    emit("setTimeout(function () { console.log(\"CK2:\" + (sink + ck)); }, 90);");
  }

  void emit(const std::string& line) {
    for (int i = 0; i < indent_; ++i) out_ += "  ";
    out_ += line;
    out_ += '\n';
  }

  Rng rng_;
  GenOptions options_;
  std::string out_;
  int indent_ = 0;
  int next_counter_ = 0;
  std::vector<std::string> scalars_;
  std::vector<std::string> arrays_;
  std::vector<std::string> objects_;
  std::vector<std::string> counters_;
  std::vector<std::string> functions_;
  std::vector<int> fn_arity_;
};

}  // namespace

std::string generate_program(std::uint64_t seed, const GenOptions& options) {
  return ProgramBuilder(seed, options).build();
}

}  // namespace jsceres::fuzz
