// Differential fuzzing driver for the engine sandbox.
//
//   fuzz_driver [--smoke] [--seed N] [--count N] [--corpus DIR] [--timers]
//   fuzz_driver --hostile
//   fuzz_driver --sessions N [--seed N] [--count N]
//
// Default (and --smoke) mode: generate `count` programs from consecutive
// seeds starting at `seed`, run the full oracle battery over each (every
// fourth program carries the event-loop epilogue and additionally exercises
// the serial-vs-frame-graph oracle), minimize any failure and persist it to
// the corpus directory. Exit status is the number of failing seeds (capped
// at 99), so CI can upload the corpus and fail the step in one go.
//
// --hostile runs the hostile-input demo suite: every case must trip its
// limit with a recoverable error and leave the engine reusable.
//
// --sessions N routes the generated programs through a real SessionSupervisor
// in batches of N concurrent sessions over one shared pool. Every session
// must end in a structured terminal outcome and no quarantine may be blamed
// on the runtime itself (outcome.runtime_fault stays false).
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "fuzz/generator.h"
#include "fuzz/oracles.h"
#include "fuzz/triage.h"
#include "rivertrail/thread_pool.h"
#include "support/supervisor.h"

namespace {

int run_hostile_suite() {
  int failures = 0;
  for (const jsceres::fuzz::HostileCase& hostile :
       jsceres::fuzz::hostile_suite()) {
    const jsceres::fuzz::HostileReport report =
        jsceres::fuzz::run_hostile_case(hostile);
    std::printf("[%s] %-16s (%s): %s\n",
                report.recovered ? "RECOVERED" : "FAILED",
                report.name.c_str(), hostile.contained_by.c_str(),
                report.error.c_str());
    if (!report.recovered) ++failures;
  }
  std::printf("hostile suite: %d failure(s)\n", failures);
  return failures;
}

int run_smoke(std::uint64_t base_seed, int count, const std::string& corpus,
              bool force_timers) {
  int failures = 0;
  for (int i = 0; i < count; ++i) {
    const std::uint64_t seed = base_seed + std::uint64_t(i);
    jsceres::fuzz::GenOptions gen;
    gen.use_timers = force_timers || (i % 4 == 3);
    const std::string source = jsceres::fuzz::generate_program(seed, gen);
    jsceres::fuzz::OracleOptions oracle_options;
    oracle_options.has_timers = gen.use_timers;
    const jsceres::fuzz::OracleOutcome outcome =
        jsceres::fuzz::check_program(source, oracle_options);
    if (outcome.ok) continue;

    ++failures;
    std::printf("FAIL seed=%llu oracle=%s: %s\n",
                static_cast<unsigned long long>(seed), outcome.oracle.c_str(),
                outcome.detail.c_str());
    jsceres::fuzz::FailingCase failing;
    failing.seed = seed;
    failing.oracle = outcome.oracle;
    failing.detail = outcome.detail;
    failing.source = source;
    failing.minimized = jsceres::fuzz::minimize_lines(
        source, [&](const std::string& candidate) {
          const jsceres::fuzz::OracleOutcome repro =
              jsceres::fuzz::check_program(candidate, oracle_options);
          return !repro.ok && repro.oracle == outcome.oracle;
        });
    const std::string path = jsceres::fuzz::save_case(corpus, failing);
    if (!path.empty()) {
      std::printf("  minimized repro saved to %s\n", path.c_str());
    }
  }
  std::printf("fuzz smoke: %d program(s), %d failure(s)\n", count, failures);
  return failures > 99 ? 99 : failures;
}

int run_sessions(std::uint64_t base_seed, int count, int sessions) {
  jsceres::rivertrail::ThreadPool pool(4);
  jsceres::SessionSupervisor supervisor(pool);
  int failures = 0;
  int done = 0;
  while (done < count) {
    std::vector<jsceres::SessionRequest> batch;
    for (int s = 0; s < sessions && done + s < count; ++s) {
      const std::uint64_t seed = base_seed + std::uint64_t(done + s);
      jsceres::fuzz::GenOptions gen;
      gen.use_timers = (done + s) % 4 == 3;
      jsceres::SessionRequest request;
      request.name = "seed-" + std::to_string(seed);
      request.source = jsceres::fuzz::generate_program(seed, gen);
      request.limits.max_memory_bytes = 4u << 20;
      request.max_ticks = 2'000'000;
      request.has_timers = gen.use_timers;
      request.horizon_ms = 200;
      // A third of the batch gets a real wall deadline so the degradation
      // ladder sees traffic; a deadline miss is a legal structured outcome.
      if ((done + s) % 3 == 2) request.deadline_ms = 250;
      batch.push_back(std::move(request));
    }
    const std::vector<jsceres::SessionOutcome> outcomes =
        supervisor.run(batch);
    for (const jsceres::SessionOutcome& outcome : outcomes) {
      if (!outcome.runtime_fault && !outcome.history.empty()) continue;
      if (!outcome.runtime_fault &&
          outcome.state == jsceres::SessionState::Cancelled) {
        continue;  // attempts may legitimately be zero for a sticky cancel
      }
      ++failures;
      std::printf("FAIL %s: state=%s runtime_fault=%d error=%s\n",
                  outcome.name.c_str(), jsceres::to_string(outcome.state),
                  int(outcome.runtime_fault), outcome.error.c_str());
    }
    done += int(batch.size());
  }
  std::printf("session mode: %d program(s) in batches of %d, %d failure(s)\n",
              count, sessions, failures);
  return failures > 99 ? 99 : failures;
}

}  // namespace

int main(int argc, char** argv) {
  bool hostile = false;
  bool timers = false;
  int sessions = 0;
  std::uint64_t seed = 1;
  int count = 500;
  std::string corpus = "fuzz-corpus";

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--hostile") == 0) {
      hostile = true;
    } else if (std::strcmp(arg, "--smoke") == 0) {
      // Default mode; the flag exists so CI invocations read clearly.
    } else if (std::strcmp(arg, "--timers") == 0) {
      timers = true;
    } else if (std::strcmp(arg, "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(arg, "--count") == 0 && i + 1 < argc) {
      count = int(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(arg, "--corpus") == 0 && i + 1 < argc) {
      corpus = argv[++i];
    } else if (std::strcmp(arg, "--sessions") == 0 && i + 1 < argc) {
      sessions = int(std::strtol(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: fuzz_driver [--smoke] [--hostile] [--sessions N] "
                   "[--seed N] [--count N] [--corpus DIR] [--timers]\n");
      return 2;
    }
  }

  if (hostile) return run_hostile_suite();
  if (sessions > 0) return run_sessions(seed, count, sessions);
  return run_smoke(seed, count, corpus, timers);
}
