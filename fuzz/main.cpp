// Differential fuzzing driver for the engine sandbox.
//
//   fuzz_driver [--smoke] [--seed N] [--count N] [--corpus DIR] [--timers]
//   fuzz_driver --hostile
//   fuzz_driver --hostile-net
//   fuzz_driver --serve [--seed N] [--count N]
//   fuzz_driver --sessions N [--seed N] [--count N]
//   fuzz_driver --soak [--sessions N] [--seed N] [--metrics-out FILE]
//               [--trace-out FILE]
//
// Default (and --smoke) mode: generate `count` programs from consecutive
// seeds starting at `seed`, run the full oracle battery over each (every
// fourth program carries the event-loop epilogue and additionally exercises
// the serial-vs-frame-graph oracle), minimize any failure and persist it to
// the corpus directory. Exit status is the number of failing seeds (capped
// at 99), so CI can upload the corpus and fail the step in one go.
//
// --hostile runs the hostile-input demo suite: every case must trip its
// limit with a recoverable error and leave the engine reusable.
//
// --hostile-net runs the hostile-client suite against a real loopback
// AnalysisServer: garbage magic, oversized length prefixes, zero-length
// floods, a slow-drip writer, mid-frame and mid-response disconnects,
// connection/in-flight/rate floods. Every case must end in a typed error
// frame (or orderly close) with the server still serving afterwards.
//
// --serve streams `count` requests through the server over real sockets —
// generated programs with every tenth slot a hostile action — after first
// running the loopback differential oracle: in-process submit() and the
// wire round-trip must agree outcome-for-outcome on the same requests.
//
// --sessions N routes the generated programs through a real SessionSupervisor
// in batches of N concurrent sessions over one shared pool. Every session
// must end in a structured terminal outcome and no quarantine may be blamed
// on the runtime itself (outcome.runtime_fault stays false).
//
// --soak streams N sessions (default 2000) through the resident
// AnalysisService front-end and asserts the multi-tenant memory contract:
// after warmup, the process-wide shared structures (atom table, shape tree,
// stamp segments) and the RSS must plateau instead of growing with session
// count, and once the stream drains, zero stamp-arena segments may remain
// checked out. Run under ASan to additionally prove zero leaks.
// --metrics-out FILE periodically overwrites FILE with the full metrics
// registry as JSON; --trace-out FILE records the whole soak into a Chrome
// trace-event file (open in chrome://tracing or ui.perfetto.dev).
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "ceres/char_stack.h"
#include "fuzz/generator.h"
#include "fuzz/oracles.h"
#include "fuzz/triage.h"
#include "fuzz/wire.h"
#include "interp/shape.h"
#include "js/atom.h"
#include "rivertrail/thread_pool.h"
#include "support/epoch.h"
#include "support/obs.h"
#include "support/service.h"
#include "support/supervisor.h"

#if defined(__linux__)
#include <unistd.h>
#endif

namespace {

int run_hostile_suite() {
  int failures = 0;
  for (const jsceres::fuzz::HostileCase& hostile :
       jsceres::fuzz::hostile_suite()) {
    const jsceres::fuzz::HostileReport report =
        jsceres::fuzz::run_hostile_case(hostile);
    std::printf("[%s] %-16s (%s): %s\n",
                report.recovered ? "RECOVERED" : "FAILED",
                report.name.c_str(), hostile.contained_by.c_str(),
                report.error.c_str());
    if (!report.recovered) ++failures;
  }
  std::printf("hostile suite: %d failure(s)\n", failures);
  return failures;
}

int run_hostile_net() {
  int failures = 0;
  for (const jsceres::fuzz::NetHostileReport& report :
       jsceres::fuzz::run_hostile_net_suite()) {
    std::printf("[%s] %-24s %s\n", report.recovered ? "RECOVERED" : "FAILED",
                report.name.c_str(), report.detail.c_str());
    if (!report.recovered) ++failures;
  }
  std::printf("hostile-net suite: %d failure(s)\n", failures);
  return failures;
}

int run_smoke(std::uint64_t base_seed, int count, const std::string& corpus,
              bool force_timers) {
  int failures = 0;
  for (int i = 0; i < count; ++i) {
    const std::uint64_t seed = base_seed + std::uint64_t(i);
    jsceres::fuzz::GenOptions gen;
    gen.use_timers = force_timers || (i % 4 == 3);
    const std::string source = jsceres::fuzz::generate_program(seed, gen);
    jsceres::fuzz::OracleOptions oracle_options;
    oracle_options.has_timers = gen.use_timers;
    const jsceres::fuzz::OracleOutcome outcome =
        jsceres::fuzz::check_program(source, oracle_options);
    if (outcome.ok) continue;

    ++failures;
    std::printf("FAIL seed=%llu oracle=%s: %s\n",
                static_cast<unsigned long long>(seed), outcome.oracle.c_str(),
                outcome.detail.c_str());
    jsceres::fuzz::FailingCase failing;
    failing.seed = seed;
    failing.oracle = outcome.oracle;
    failing.detail = outcome.detail;
    failing.source = source;
    failing.minimized = jsceres::fuzz::minimize_lines(
        source, [&](const std::string& candidate) {
          const jsceres::fuzz::OracleOutcome repro =
              jsceres::fuzz::check_program(candidate, oracle_options);
          return !repro.ok && repro.oracle == outcome.oracle;
        });
    const std::string path = jsceres::fuzz::save_case(corpus, failing);
    if (!path.empty()) {
      std::printf("  minimized repro saved to %s\n", path.c_str());
    }
  }
  std::printf("fuzz smoke: %d program(s), %d failure(s)\n", count, failures);
  return failures > 99 ? 99 : failures;
}

int run_sessions(std::uint64_t base_seed, int count, int sessions) {
  jsceres::rivertrail::ThreadPool pool(4);
  jsceres::SessionSupervisor supervisor(pool);
  int failures = 0;
  int done = 0;
  while (done < count) {
    std::vector<jsceres::SessionRequest> batch;
    for (int s = 0; s < sessions && done + s < count; ++s) {
      const std::uint64_t seed = base_seed + std::uint64_t(done + s);
      jsceres::fuzz::GenOptions gen;
      gen.use_timers = (done + s) % 4 == 3;
      jsceres::SessionRequest request;
      request.name = "seed-" + std::to_string(seed);
      request.source = jsceres::fuzz::generate_program(seed, gen);
      request.limits.max_memory_bytes = 4u << 20;
      request.max_ticks = 2'000'000;
      request.has_timers = gen.use_timers;
      request.horizon_ms = 200;
      // A third of the batch gets a real wall deadline so the degradation
      // ladder sees traffic; a deadline miss is a legal structured outcome.
      if ((done + s) % 3 == 2) request.deadline_ms = 250;
      batch.push_back(std::move(request));
    }
    const std::vector<jsceres::SessionOutcome> outcomes =
        supervisor.run(batch);
    for (const jsceres::SessionOutcome& outcome : outcomes) {
      if (!outcome.runtime_fault && !outcome.history.empty()) continue;
      if (!outcome.runtime_fault &&
          outcome.state == jsceres::SessionState::Cancelled) {
        continue;  // attempts may legitimately be zero for a sticky cancel
      }
      ++failures;
      std::printf("FAIL %s: state=%s runtime_fault=%d error=%s\n",
                  outcome.name.c_str(), jsceres::to_string(outcome.state),
                  int(outcome.runtime_fault), outcome.error.c_str());
    }
    done += int(batch.size());
  }
  std::printf("session mode: %d program(s) in batches of %d, %d failure(s)\n",
              count, sessions, failures);
  return failures > 99 ? 99 : failures;
}

/// Current resident-set bytes (Linux: /proc/self/statm), 0 when unknown.
std::size_t current_rss_bytes() {
#if defined(__linux__)
  std::FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm == nullptr) return 0;
  unsigned long long total = 0;
  unsigned long long resident = 0;
  const int fields = std::fscanf(statm, "%llu %llu", &total, &resident);
  std::fclose(statm);
  if (fields != 2) return 0;
  return std::size_t(resident) * std::size_t(sysconf(_SC_PAGESIZE));
#else
  return 0;
#endif
}

/// Advance the epoch and run one full serialized reclamation pass (shapes
/// before the domain, per the ordering contract).
void force_reclaim() {
  jsceres::EpochDomain::global().advance();
  jsceres::AnalysisService::run_reclamation_pass();
}

/// Overwrite `path` with the full metrics registry as JSON (engine gauges
/// refreshed first). Called periodically so a crash mid-soak still leaves
/// the last period's snapshot on disk.
void dump_metrics(jsceres::AnalysisService& service, const std::string& path) {
  if (path.empty()) return;
  const std::string json = service.metrics_snapshot().to_json();
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "metrics-out: cannot open %s\n", path.c_str());
    return;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fputc('\n', out);
  std::fclose(out);
}

int run_soak(std::uint64_t base_seed, int total,
             const std::string& metrics_out, const std::string& trace_out) {
  using namespace jsceres;
  if (!trace_out.empty()) obs::TraceRecorder::instance().start();
  obs::TraceRecorder::instance().set_thread_name("soak-driver");
  rivertrail::ThreadPool pool(4);
  ServiceOptions options;
  options.max_active = 4;
  options.max_queue = 32;
  options.max_per_tenant = 2;
  options.governor.ceiling_bytes = 256u << 20;
  options.watchdog_interval_ms = 100;
  options.watchdog_stuck_ms = 10'000;
  options.reclaim_every = 8;
  int failures = 0;
  std::size_t warm_shared = 0;
  std::size_t warm_rss = 0;
  std::size_t end_shared = 0;
  std::size_t end_rss = 0;
  {
    AnalysisService service(pool, options);
    const int warmup = std::max(total / 4, 1);
    std::deque<ServiceTicket> window;
    std::size_t runtime_faults = 0;
    std::size_t shed = 0;

    const auto pump = [&](std::size_t keep) {
      while (window.size() > keep) {
        const ServiceOutcome& outcome = window.front().wait();
        if (outcome.state == ServiceState::Shed) {
          ++shed;
        } else if (outcome.session.runtime_fault) {
          ++runtime_faults;
          std::printf("SOAK FAIL %s: state=%s error=%s\n",
                      outcome.session.name.c_str(), to_string(outcome.state),
                      outcome.session.error.c_str());
        }
        window.pop_front();
      }
    };

    for (int i = 0; i < total; ++i) {
      const std::uint64_t seed = base_seed + std::uint64_t(i);
      fuzz::GenOptions gen;
      gen.use_timers = i % 4 == 3;
      ServiceRequest request;
      request.tenant = "tenant-" + std::to_string(i % 8);
      request.memory_estimate = 4u << 20;
      request.session.name = "seed-" + std::to_string(seed);
      request.session.source = fuzz::generate_program(seed, gen);
      request.session.limits.max_memory_bytes = 4u << 20;
      request.session.max_ticks = 2'000'000;
      request.session.has_timers = gen.use_timers;
      request.session.horizon_ms = 200;
      // Timer sessions run their frames through the pipelined frame graph,
      // so soak traces carry per-frame kernel/upload/commit spans.
      if (gen.use_timers) request.session.frame_pool = &pool;
      if (i % 5 == 4) request.session.deadline_ms = 250;
      window.push_back(service.submit(std::move(request)));
      // Sliding completion window: bounded caller-side state, and the
      // queue never overflows purely from submission burstiness.
      pump(16);
      if ((i + 1) % 100 == 0) dump_metrics(service, metrics_out);

      if (i + 1 == warmup) {
        pump(0);
        service.drain();
        force_reclaim();
        warm_shared = AnalysisService::shared_structure_bytes();
        warm_rss = current_rss_bytes();
      }
    }
    pump(0);
    service.drain();
    force_reclaim();
    end_shared = AnalysisService::shared_structure_bytes();
    end_rss = current_rss_bytes();

    const ServiceStats stats = service.stats();
    std::printf(
        "soak: %d session(s), completed=%zu shed=%zu degraded=%zu "
        "watchdog-quarantines=%zu\n",
        total, stats.completed, shed, stats.degraded_admissions,
        stats.watchdog_quarantines);
    std::printf(
        "soak: governor high-water=%zu bytes, reclaimed=%zu bytes, "
        "queue high-water=%zu, active high-water=%zu\n",
        stats.governor_high_water_bytes,
        EpochDomain::global().reclaimed_bytes(), stats.queue_high_water,
        stats.active_high_water);
    failures += int(runtime_faults);
    dump_metrics(service, metrics_out);
  }
  if (!trace_out.empty()) {
    obs::TraceRecorder::instance().stop();
    if (obs::TraceRecorder::instance().write_chrome_trace(trace_out)) {
      std::printf("soak: trace written to %s\n", trace_out.c_str());
    } else {
      std::printf("SOAK FAIL: cannot write trace to %s\n", trace_out.c_str());
      ++failures;
    }
  }

  // Plateau: post-warmup growth of the shared structures must be marginal —
  // the whole point of epoch reclamation. The slack absorbs hash-table
  // capacity rounding and the generator's long-tail of rare atoms.
  const std::size_t shared_slack = warm_shared / 2 + (1u << 20);
  std::printf("soak: shared structures warm=%zu end=%zu (slack %zu)\n",
              warm_shared, end_shared, shared_slack);
  if (end_shared > warm_shared + shared_slack) {
    std::printf("SOAK FAIL: shared structures grew past the plateau\n");
    ++failures;
  }
  // RSS plateau, generous: allocator caching and ASan quarantines make RSS
  // noisy, but session-linear growth (the leak this guards against) dwarfs
  // the slack at soak counts.
  if (warm_rss > 0 && end_rss > 0) {
    // Sanitizer builds keep freed memory quarantined and shadow-mapped, so
    // their RSS trails session count by design; the plateau assertion gets
    // a wide berth there (the sanitizer run's job is leak detection).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
    const std::size_t base_slack = 768u << 20;
#else
    const std::size_t base_slack = 96u << 20;
#endif
    const std::size_t rss_slack = warm_rss / 2 + base_slack;
    std::printf("soak: rss warm=%zu end=%zu (slack %zu)\n", warm_rss, end_rss,
                rss_slack);
    if (end_rss > warm_rss + rss_slack) {
      std::printf("SOAK FAIL: rss grew past the plateau\n");
      ++failures;
    }
  }
  // Every analyzer is gone: no stamp segment may still be checked out.
  if (jsceres::ceres::stamp_segments_live() != 0) {
    std::printf("SOAK FAIL: %zu stamp segment(s) leaked\n",
                jsceres::ceres::stamp_segments_live());
    ++failures;
  }
  jsceres::ceres::drain_stamp_segment_pool();
  std::printf("soak: %d failure(s)\n", failures);
  return failures > 99 ? 99 : failures;
}

}  // namespace

int main(int argc, char** argv) {
  bool hostile = false;
  bool hostile_net = false;
  bool serve = false;
  bool timers = false;
  bool soak = false;
  int sessions = 0;
  std::uint64_t seed = 1;
  int count = 500;
  std::string corpus = "fuzz-corpus";
  std::string metrics_out;
  std::string trace_out;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--hostile") == 0) {
      hostile = true;
    } else if (std::strcmp(arg, "--hostile-net") == 0) {
      hostile_net = true;
    } else if (std::strcmp(arg, "--serve") == 0) {
      serve = true;
    } else if (std::strcmp(arg, "--soak") == 0) {
      soak = true;
    } else if (std::strcmp(arg, "--smoke") == 0) {
      // Default mode; the flag exists so CI invocations read clearly.
    } else if (std::strcmp(arg, "--timers") == 0) {
      timers = true;
    } else if (std::strcmp(arg, "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(arg, "--count") == 0 && i + 1 < argc) {
      count = int(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(arg, "--corpus") == 0 && i + 1 < argc) {
      corpus = argv[++i];
    } else if (std::strcmp(arg, "--sessions") == 0 && i + 1 < argc) {
      sessions = int(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(arg, "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::strcmp(arg, "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: fuzz_driver [--smoke] [--hostile] [--hostile-net] "
                   "[--serve] [--soak] [--sessions N] [--seed N] [--count N] "
                   "[--corpus DIR] [--timers] [--metrics-out FILE] "
                   "[--trace-out FILE]\n");
      return 2;
    }
  }

  if (hostile) return run_hostile_suite();
  if (hostile_net) return run_hostile_net();
  // In serve mode --count N is the stream length (slots, including the
  // hostile ones), defaulting to 500 like smoke mode.
  if (serve) return jsceres::fuzz::run_serve_mode(seed, count);
  // In soak mode --sessions N is the stream length (how many sessions flow
  // through the resident service), defaulting to 2000.
  if (soak) {
    return run_soak(seed, sessions > 0 ? sessions : 2000, metrics_out,
                    trace_out);
  }
  if (sessions > 0) return run_sessions(seed, count, sessions);
  return run_smoke(seed, count, corpus, timers);
}
