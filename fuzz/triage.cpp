#include "fuzz/triage.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace jsceres::fuzz {

namespace {

std::vector<std::string> split_lines(const std::string& source) {
  std::vector<std::string> lines;
  std::string line;
  for (const char c : source) {
    if (c == '\n') {
      lines.push_back(line);
      line.clear();
    } else {
      line += c;
    }
  }
  if (!line.empty()) lines.push_back(line);
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace

std::string minimize_lines(
    const std::string& source,
    const std::function<bool(const std::string&)>& still_fails) {
  std::vector<std::string> lines = split_lines(source);
  // Chunked removal, halving chunk size: a dropped chunk that breaks the
  // nesting structure simply fails to parse, the predicate rejects it, and
  // the chunk stays — no syntax awareness needed for the common case where
  // whole statements fit on single lines.
  for (std::size_t chunk = lines.size() / 2; chunk >= 1; chunk /= 2) {
    bool removed_any = true;
    while (removed_any) {
      removed_any = false;
      for (std::size_t start = 0; start + chunk <= lines.size();) {
        std::vector<std::string> candidate;
        candidate.reserve(lines.size() - chunk);
        candidate.insert(candidate.end(), lines.begin(),
                         lines.begin() + std::ptrdiff_t(start));
        candidate.insert(candidate.end(),
                         lines.begin() + std::ptrdiff_t(start + chunk),
                         lines.end());
        if (still_fails(join_lines(candidate))) {
          lines = std::move(candidate);
          removed_any = true;
          // Re-test the same start index against the shifted-in lines.
        } else {
          start += chunk;
        }
      }
    }
    if (chunk == 1) break;
  }
  return join_lines(lines);
}

std::string save_case(const std::string& corpus_dir,
                      const FailingCase& failing) {
  std::error_code ec;
  std::filesystem::create_directories(corpus_dir, ec);
  if (ec) return {};
  const std::string path = corpus_dir + "/seed" + std::to_string(failing.seed) +
                           "_" + failing.oracle + ".js";
  std::ofstream out(path, std::ios::trunc);
  if (!out) return {};
  out << "// fuzz failure\n"
      << "// seed:   " << failing.seed << "\n"
      << "// oracle: " << failing.oracle << "\n"
      << "// detail: " << failing.detail << "\n"
      << (failing.minimized.empty() ? failing.source : failing.minimized);
  if (!failing.minimized.empty() && failing.minimized != failing.source) {
    out << "\n// --- original (pre-minimization) ---\n";
    std::string commented;
    for (const char c : failing.source) {
      if (commented.empty() || commented.back() == '\n') commented += "// ";
      commented += c;
    }
    out << commented;
  }
  return out ? path : std::string();
}

}  // namespace jsceres::fuzz
