#include "fuzz/wire.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "fuzz/generator.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"
#include "rivertrail/thread_pool.h"
#include "support/service.h"

namespace jsceres::fuzz {

namespace {

std::int64_t mono_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// One in-process AnalysisService behind one AnalysisServer on an ephemeral
/// loopback port. Declaration order is the teardown contract: the server
/// (declared last) stops and joins its connection threads before the
/// service it feeds is destroyed.
struct Loopback {
  rivertrail::ThreadPool pool{4};
  AnalysisService service;
  net::AnalysisServer server;

  Loopback(const ServiceOptions& sopts, const net::ServerOptions& nopts)
      : service(pool, sopts), server(service, nopts) {}
};

/// A raw client socket, deliberately beneath AnalysisClient: the hostile
/// cases need to write bytes no well-behaved client would.
int connect_raw(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

struct RawFrame {
  bool got = false;
  bool closed = false;  // EOF before a whole frame arrived
  net::Frame frame;
};

/// Read one whole frame off a raw socket within `timeout_ms`.
RawFrame read_frame_raw(int fd, std::vector<std::uint8_t>& buffer,
                        int timeout_ms) {
  RawFrame out;
  const std::int64_t deadline = mono_ms() + timeout_ms;
  for (;;) {
    const net::DecodeResult decoded =
        net::decode_frame(buffer.data(), buffer.size(), 1u << 20);
    if (decoded.status == net::DecodeStatus::Ok) {
      buffer.erase(buffer.begin(),
                   buffer.begin() + std::ptrdiff_t(decoded.consumed));
      out.got = true;
      out.frame = decoded.frame;
      return out;
    }
    if (decoded.status == net::DecodeStatus::Bad) return out;

    const std::int64_t left = deadline - mono_ms();
    if (left <= 0) return out;
    if (net::wait_readable(fd, int(left)) != net::IoStatus::Ok) return out;
    std::uint8_t chunk[4096];
    const std::ptrdiff_t got = net::read_some(fd, chunk, sizeof(chunk));
    if (got <= 0) {
      out.closed = got == 0;
      return out;
    }
    buffer.insert(buffer.end(), chunk, chunk + got);
  }
}

/// Expect a typed Error frame with code `want` on `fd` — the contractual
/// ending of every hostile case.
NetHostileReport expect_error(const std::string& name, int fd,
                              net::WireError want, int timeout_ms) {
  NetHostileReport report;
  report.name = name;
  std::vector<std::uint8_t> buffer;
  const RawFrame raw = read_frame_raw(fd, buffer, timeout_ms);
  if (!raw.got) {
    report.detail = raw.closed ? "closed without a typed error frame"
                               : "no error frame before the timeout";
    return report;
  }
  if (raw.frame.kind != net::FrameKind::Error) {
    report.detail = "expected an Error frame, got another kind";
    return report;
  }
  net::WireErrorFrame error;
  if (!net::decode_error(raw.frame.payload, error)) {
    report.detail = "error frame failed to decode";
    return report;
  }
  if (error.code != want) {
    report.detail = std::string("expected ") + net::to_string(want) +
                    ", got " + net::to_string(error.code);
    return report;
  }
  report.recovered = true;
  report.detail = std::string("typed ") + net::to_string(error.code) + ": " +
                  error.message;
  return report;
}

net::WireRequest trivial_request(const std::string& name) {
  net::WireRequest request;
  request.name = name;
  request.source = "console.log(1 + 2);";
  request.max_ticks = 1'000'000;
  request.memory_estimate = 1u << 20;
  request.max_memory_bytes = 4u << 20;
  return request;
}

std::string describe(const net::WireResult& result) {
  switch (result.kind) {
    case net::WireResult::Kind::Outcome:
      return std::string("outcome state=") + to_string(result.outcome.state);
    case net::WireResult::Kind::ErrorFrame:
      return std::string("error frame ") + net::to_string(result.error.code);
    case net::WireResult::Kind::Transport:
      return "transport: " + result.transport;
  }
  return "?";
}

/// Fresh well-formed client, one trivial request, must complete. Retries
/// absorb the handful of milliseconds a just-closed hostile connection may
/// still occupy a slot (its handler notices EOF on the next poll tick).
bool probe_alive(std::uint16_t port, const std::string& token,
                 std::string* detail) {
  std::string last = "no attempt ran";
  for (int attempt = 0; attempt < 20; ++attempt) {
    if (attempt > 0) sleep_ms(50);
    net::ClientOptions copts;
    copts.port = port;
    copts.token = token;
    copts.io_timeout_ms = 10'000;
    net::AnalysisClient client(copts);
    std::string error;
    if (!client.connect(&error)) {
      last = "connect: " + error;
      continue;
    }
    const net::WireResult result = client.roundtrip(trivial_request("probe"));
    if (result.ok() && result.outcome.state == ServiceState::Completed) {
      return true;
    }
    last = describe(result);
  }
  if (detail != nullptr) *detail = last;
  return false;
}

void append_u32_le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(std::uint8_t(v >> shift));
  }
}

/// A hand-rolled frame header announcing `payload_len` bytes — the codec
/// refuses to encode this lie, so the attacker assembles it manually.
std::vector<std::uint8_t> header_claiming(const std::string& token,
                                          std::uint32_t payload_len) {
  std::vector<std::uint8_t> out;
  append_u32_le(out, net::kMagic);
  out.push_back(net::kProtocolVersion);
  out.push_back(std::uint8_t(net::FrameKind::Request));
  out.push_back(0);
  out.push_back(0);  // reserved
  for (std::size_t i = 0; i < net::kTenantTokenBytes; ++i) {
    out.push_back(i < token.size() ? std::uint8_t(token[i]) : 0);
  }
  append_u32_le(out, payload_len);
  return out;
}

/// A compute-bound source that takes a few milliseconds — long enough that
/// a batch of frames pipelined behind it is decoded before any completes.
std::string slow_source() {
  return "var s = 0; var i = 0;\n"
         "while (i < 200000) { s = s + i; i = i + 1; }\n"
         "console.log(s);\n";
}

}  // namespace

std::vector<NetHostileReport> run_hostile_net_suite() {
  std::vector<NetHostileReport> reports;

  ServiceOptions sopts;
  sopts.max_active = 2;
  sopts.max_queue = 16;
  sopts.max_per_tenant = 2;
  sopts.watchdog_interval_ms = 100;
  sopts.watchdog_stuck_ms = 10'000;

  net::ServerOptions nopts;
  nopts.max_connections = 4;
  nopts.max_frame_bytes = 64u << 10;
  nopts.max_in_flight_per_conn = 2;
  nopts.read_timeout_ms = 300;  // slowloris dies fast in the suite
  nopts.write_timeout_ms = 2000;
  nopts.idle_timeout_ms = 10'000;
  nopts.tenants = {{"tok-alpha", "alpha"}, {"tok-beta", "beta"}};

  Loopback box(sopts, nopts);
  std::string start_error;
  if (!box.server.start(&start_error)) {
    reports.push_back({"server-start", false, start_error});
    return reports;
  }
  const std::uint16_t port = box.server.port();

  // Every case, recovered or not, is followed by the liveness probe: the
  // server must still serve a fresh well-formed request.
  const auto finish = [&](NetHostileReport report) {
    std::string detail;
    if (!probe_alive(port, "tok-alpha", &detail)) {
      report.recovered = false;
      report.detail += " | post-case probe failed: " + detail;
    }
    reports.push_back(std::move(report));
  };

  {  // An HTTP request walks into a binary port.
    NetHostileReport report{"garbage-magic", false, "connect failed"};
    const int fd = connect_raw(port);
    if (fd >= 0) {
      const char kGarbage[] = "GET / HTTP/1.1\r\nHost: x\r\n\r\n";
      net::write_all(fd, kGarbage, sizeof(kGarbage) - 1, 1000);
      report = expect_error("garbage-magic", fd, net::WireError::BadMagic,
                            3000);
      ::close(fd);
    }
    finish(std::move(report));
  }

  {  // Header announcing a 1 GiB payload; refused from the 28th byte.
    NetHostileReport report{"oversized-frame", false, "connect failed"};
    const int fd = connect_raw(port);
    if (fd >= 0) {
      const std::vector<std::uint8_t> header =
          header_claiming("tok-alpha", 1u << 30);
      net::write_all(fd, header.data(), header.size(), 1000);
      report = expect_error("oversized-frame", fd,
                            net::WireError::FrameTooLarge, 3000);
      ::close(fd);
    }
    finish(std::move(report));
  }

  {  // A flood of syntactically valid frames with empty (undecodable)
     // request payloads; the first one is answered and the stream cut.
    NetHostileReport report{"zero-length-flood", false, "connect failed"};
    const int fd = connect_raw(port);
    if (fd >= 0) {
      net::Frame empty;
      empty.kind = net::FrameKind::Request;
      empty.tenant = "tok-alpha";
      const std::vector<std::uint8_t> one = net::encode_frame(empty);
      std::vector<std::uint8_t> flood;
      for (int i = 0; i < 32; ++i) {
        flood.insert(flood.end(), one.begin(), one.end());
      }
      net::write_all(fd, flood.data(), flood.size(), 1000);
      report = expect_error("zero-length-flood", fd,
                            net::WireError::MalformedPayload, 3000);
      ::close(fd);
    }
    finish(std::move(report));
  }

  {  // Slowloris: drip a valid frame one byte at a time, slower than the
     // read deadline allows the whole frame to take.
    NetHostileReport report{"slow-drip", false, "connect failed"};
    const int fd = connect_raw(port);
    if (fd >= 0) {
      const std::vector<std::uint8_t> frame =
          net::make_request_frame("tok-alpha", trivial_request("drip"));
      for (std::size_t i = 0; i < 8 && i < frame.size(); ++i) {
        net::write_all(fd, frame.data() + i, 1, 200);
        sleep_ms(60);
      }
      report =
          expect_error("slow-drip", fd, net::WireError::ReadTimeout, 5000);
      ::close(fd);
    }
    finish(std::move(report));
  }

  {  // Vanish mid-frame: half a header, then gone. Nothing to read back —
     // recovery IS the probe.
    NetHostileReport report{"disconnect-mid-frame", false, "connect failed"};
    const int fd = connect_raw(port);
    if (fd >= 0) {
      const std::vector<std::uint8_t> frame =
          net::make_request_frame("tok-alpha", trivial_request("half"));
      net::write_all(fd, frame.data(), frame.size() / 2, 1000);
      ::close(fd);
      report.recovered = true;
      report.detail = "server dropped the half-sent frame";
    }
    finish(std::move(report));
  }

  {  // Vanish mid-response: a full valid request, then gone before the
     // answer. The write fails structurally; the handler frees the slot.
    NetHostileReport report{"disconnect-mid-response", false,
                            "connect failed"};
    const int fd = connect_raw(port);
    if (fd >= 0) {
      const std::vector<std::uint8_t> frame =
          net::make_request_frame("tok-alpha", trivial_request("ghost"));
      net::write_all(fd, frame.data(), frame.size(), 1000);
      ::close(fd);
      report.recovered = true;
      report.detail = "server absorbed the mid-response disconnect";
    }
    finish(std::move(report));
  }

  {  // Flood past the connection cap: four live clients hold every slot;
     // the fifth and sixth get a typed ServerBusy goodbye.
    NetHostileReport report{"connection-flood", true, ""};
    std::vector<std::unique_ptr<net::AnalysisClient>> keep;
    for (std::size_t i = 0; i < nopts.max_connections; ++i) {
      net::ClientOptions copts;
      copts.port = port;
      copts.token = "tok-alpha";
      auto client = std::make_unique<net::AnalysisClient>(copts);
      std::string error;
      if (!client->connect(&error)) {
        report.recovered = false;
        report.detail = "keeper connect: " + error;
        break;
      }
      // A served round-trip proves the slot is truly occupied (accepted
      // and handled), not just sitting in the listen backlog.
      const net::WireResult result =
          client->roundtrip(trivial_request("keeper"));
      if (!result.ok()) {
        report.recovered = false;
        report.detail = "keeper request: " + describe(result);
        break;
      }
      keep.push_back(std::move(client));
    }
    if (report.recovered) {
      for (int extra = 0; extra < 2 && report.recovered; ++extra) {
        const int fd = connect_raw(port);
        if (fd < 0) {
          report.recovered = false;
          report.detail = "excess connect failed outright";
          break;
        }
        const NetHostileReport verdict = expect_error(
            "connection-flood", fd, net::WireError::ServerBusy, 3000);
        ::close(fd);
        report.recovered = verdict.recovered;
        report.detail = verdict.detail;
      }
    }
    keep.clear();  // free the slots before the liveness probe
    finish(std::move(report));
  }

  {  // Pipeline past the in-flight cap in one write batch: the overflow is
     // rejected with TooManyInFlight, the rest served, and the connection
     // survives for a follow-up request.
    NetHostileReport report{"in-flight-flood", false, "connect failed"};
    const int fd = connect_raw(port);
    if (fd >= 0) {
      std::vector<std::uint8_t> batch;
      for (int i = 0; i < 6; ++i) {
        net::WireRequest request;
        request.id = std::uint32_t(i + 1);
        request.name = "pipeline-" + std::to_string(i);
        request.source = slow_source();
        request.max_ticks = 10'000'000;
        request.max_memory_bytes = 8u << 20;
        const std::vector<std::uint8_t> frame =
            net::make_request_frame("tok-alpha", request);
        batch.insert(batch.end(), frame.begin(), frame.end());
      }
      net::write_all(fd, batch.data(), batch.size(), 2000);

      int outcomes = 0;
      int rejected = 0;
      std::string bad;
      std::vector<std::uint8_t> buffer;
      for (int i = 0; i < 6; ++i) {
        const RawFrame raw = read_frame_raw(fd, buffer, 20'000);
        if (!raw.got) {
          bad = "reply " + std::to_string(i) + " never arrived";
          break;
        }
        if (raw.frame.kind == net::FrameKind::Response) {
          ++outcomes;
        } else if (raw.frame.kind == net::FrameKind::Error) {
          net::WireErrorFrame error;
          if (!net::decode_error(raw.frame.payload, error) ||
              error.code != net::WireError::TooManyInFlight) {
            bad = "unexpected error kind in reply " + std::to_string(i);
            break;
          }
          ++rejected;
        }
      }
      if (bad.empty() && rejected >= 1 && outcomes >= 1) {
        // The connection must survive a policy rejection: one more good
        // request on the same socket.
        const std::vector<std::uint8_t> again =
            net::make_request_frame("tok-alpha", trivial_request("after"));
        net::write_all(fd, again.data(), again.size(), 1000);
        const RawFrame raw = read_frame_raw(fd, buffer, 10'000);
        if (raw.got && raw.frame.kind == net::FrameKind::Response) {
          report.recovered = true;
          report.detail = std::to_string(outcomes) + " served, " +
                          std::to_string(rejected) +
                          " typed rejections, connection survived";
        } else {
          report.detail = "connection did not survive the rejection";
        }
      } else {
        report.detail = bad.empty()
                            ? "served=" + std::to_string(outcomes) +
                                  " rejected=" + std::to_string(rejected)
                            : bad;
      }
      ::close(fd);
    }
    finish(std::move(report));
  }

  {  // Unknown tenant token: typed AuthFailed, connection closed, no
     // engine work performed.
    net::ClientOptions copts;
    copts.port = port;
    copts.token = "tok-wrong";
    net::AnalysisClient client(copts);
    NetHostileReport report{"auth-failed", false, "connect failed"};
    std::string error;
    if (client.connect(&error)) {
      const net::WireResult result =
          client.roundtrip(trivial_request("intruder"));
      if (result.kind == net::WireResult::Kind::ErrorFrame &&
          result.error.code == net::WireError::AuthFailed) {
        report.recovered = true;
        report.detail = "typed auth-failed: " + result.error.message;
      } else {
        report.detail = describe(result);
      }
    }
    finish(std::move(report));
  }

  {  // Request-rate flood: a second server on the same service enforces a
     // 3/sec tenant quota; the burst overflow gets typed RateLimited
     // frames and the connection survives into the next window.
    net::ServerOptions ropts = nopts;
    ropts.port = 0;
    ropts.max_in_flight_per_conn = 16;  // quota must trip first
    ropts.tenant_requests_per_sec = 3;
    net::AnalysisServer rate_server(box.service, ropts);
    NetHostileReport report{"rate-flood", false, "rate server start failed"};
    std::string error;
    if (rate_server.start(&error)) {
      const int fd = connect_raw(rate_server.port());
      if (fd < 0) {
        report.detail = "connect failed";
      } else {
        std::vector<std::uint8_t> batch;
        for (int i = 0; i < 8; ++i) {
          net::WireRequest request = trivial_request("burst");
          request.id = std::uint32_t(i + 1);
          const std::vector<std::uint8_t> frame =
              net::make_request_frame("tok-beta", request);
          batch.insert(batch.end(), frame.begin(), frame.end());
        }
        net::write_all(fd, batch.data(), batch.size(), 2000);

        int served = 0;
        int limited = 0;
        std::vector<std::uint8_t> buffer;
        for (int i = 0; i < 8; ++i) {
          const RawFrame raw = read_frame_raw(fd, buffer, 20'000);
          if (!raw.got) break;
          if (raw.frame.kind == net::FrameKind::Response) ++served;
          net::WireErrorFrame frame_error;
          if (raw.frame.kind == net::FrameKind::Error &&
              net::decode_error(raw.frame.payload, frame_error) &&
              frame_error.code == net::WireError::RateLimited) {
            ++limited;
          }
        }
        if (served >= 1 && limited >= 1) {
          // Next rolling window: the same connection is welcome again.
          sleep_ms(1100);
          const std::vector<std::uint8_t> again =
              net::make_request_frame("tok-beta",
                                      trivial_request("next-window"));
          net::write_all(fd, again.data(), again.size(), 1000);
          const RawFrame raw = read_frame_raw(fd, buffer, 10'000);
          if (raw.got && raw.frame.kind == net::FrameKind::Response) {
            report.recovered = true;
            report.detail = std::to_string(served) + " served, " +
                            std::to_string(limited) +
                            " rate-limited, connection outlived the quota";
          } else {
            report.detail = "connection did not survive into the next window";
          }
        } else {
          report.detail = "served=" + std::to_string(served) +
                          " limited=" + std::to_string(limited);
        }
        ::close(fd);
      }
      rate_server.stop();
    } else {
      report.detail = error;
    }
    finish(std::move(report));
  }

  return reports;
}

int run_serve_mode(std::uint64_t base_seed, int count) {
  int failures = 0;

  ServiceOptions sopts;
  sopts.max_active = 4;
  sopts.max_queue = 32;
  sopts.max_per_tenant = 2;
  sopts.governor.ceiling_bytes = 256u << 20;
  sopts.watchdog_interval_ms = 100;
  sopts.watchdog_stuck_ms = 10'000;

  net::ServerOptions nopts;  // open server: the token is the tenant name
  nopts.max_frame_bytes = 1u << 20;

  Loopback box(sopts, nopts);
  std::string error;
  if (!box.server.start(&error)) {
    std::printf("SERVE FAIL: server start: %s\n", error.c_str());
    return 1;
  }
  const std::uint16_t port = box.server.port();

  // Phase 1 — the loopback differential oracle: the same generated request
  // submitted in-process and round-tripped through the wire must agree on
  // ServiceState, console output, and the runtime-fault verdict. (No
  // deadlines here: a wall deadline is legitimately racy, and the oracle
  // wants determinism.)
  const int differential = std::min(count, 32);
  {
    net::ClientOptions copts;
    copts.port = port;
    copts.token = "diff";
    copts.io_timeout_ms = 60'000;
    net::AnalysisClient client(copts);
    if (!client.connect(&error)) {
      std::printf("SERVE FAIL: oracle connect: %s\n", error.c_str());
      return 1;
    }
    for (int i = 0; i < differential; ++i) {
      const std::uint64_t seed = base_seed + std::uint64_t(i);
      GenOptions gen;
      gen.use_timers = i % 4 == 3;
      const std::string source = generate_program(seed, gen);

      net::WireRequest wire_request;
      wire_request.name = "diff-" + std::to_string(seed);
      wire_request.source = source;
      wire_request.mode = 3;
      wire_request.has_timers = gen.use_timers;
      wire_request.max_ticks = 2'000'000;
      wire_request.memory_estimate = 4u << 20;
      wire_request.max_memory_bytes = 4u << 20;
      const net::WireResult wire = client.roundtrip(wire_request);
      if (!wire.ok()) {
        ++failures;
        std::printf("SERVE FAIL seed=%llu: wire side: %s\n",
                    static_cast<unsigned long long>(seed),
                    describe(wire).c_str());
        client.close();
        if (!client.connect(&error)) break;
        continue;
      }

      ServiceRequest direct;
      direct.tenant = "diff";
      direct.memory_estimate = 4u << 20;
      direct.session.name = wire_request.name;
      direct.session.source = source;
      direct.session.mode = 3;
      direct.session.has_timers = gen.use_timers;
      direct.session.max_ticks = 2'000'000;
      direct.session.limits.max_memory_bytes = 4u << 20;
      // Mirror the server's sandbox setup exactly (it reflects the frame
      // cap into the source limit) so the two paths differ only in the
      // wire between them.
      direct.session.limits.max_source_bytes = nopts.max_frame_bytes;
      const ServiceOutcome local =
          box.service.submit(std::move(direct)).wait();

      if (local.state != wire.outcome.state ||
          local.session.console != wire.outcome.session.console ||
          local.session.runtime_fault != wire.outcome.session.runtime_fault) {
        ++failures;
        std::printf(
            "SERVE FAIL seed=%llu: differential mismatch: local state=%s "
            "wire state=%s console %s, fault local=%d wire=%d\n",
            static_cast<unsigned long long>(seed), to_string(local.state),
            to_string(wire.outcome.state),
            local.session.console == wire.outcome.session.console
                ? "agrees"
                : "DIFFERS",
            int(local.session.runtime_fault),
            int(wire.outcome.session.runtime_fault));
      }
    }
    std::printf("serve: differential oracle over %d seed(s)\n", differential);
  }

  // Phase 2 — mixed stream: generated requests from four tenants over
  // persistent connections, with every tenth slot replaced by a hostile
  // action. The hostile slots have no reply to check; the proof of
  // recovery is that the very next good requests keep being served.
  std::vector<std::unique_ptr<net::AnalysisClient>> clients;
  for (int t = 0; t < 4; ++t) {
    net::ClientOptions copts;
    copts.port = port;
    copts.token = "tenant-" + std::to_string(t);
    copts.io_timeout_ms = 60'000;
    clients.push_back(std::make_unique<net::AnalysisClient>(copts));
    if (!clients.back()->connect(&error)) {
      std::printf("SERVE FAIL: tenant %d connect: %s\n", t, error.c_str());
      return failures + 1;
    }
  }

  int hostile_slots = 0;
  for (int i = 0; i < count; ++i) {
    if (i % 10 == 7) {
      ++hostile_slots;
      const int fd = connect_raw(port);
      if (fd >= 0) {
        switch ((i / 10) % 5) {
          case 0: {  // garbage magic
            const char kGarbage[] = "\x00\xff GET /../../etc/passwd";
            net::write_all(fd, kGarbage, sizeof(kGarbage) - 1, 500);
            break;
          }
          case 1: {  // oversized length prefix
            const std::vector<std::uint8_t> header =
                header_claiming("tenant-0", 0x7fffffffu);
            net::write_all(fd, header.data(), header.size(), 500);
            break;
          }
          case 2: {  // zero-length (undecodable) request payload
            net::Frame empty;
            empty.kind = net::FrameKind::Request;
            empty.tenant = "tenant-0";
            const std::vector<std::uint8_t> bytes = net::encode_frame(empty);
            net::write_all(fd, bytes.data(), bytes.size(), 500);
            break;
          }
          case 3: {  // half a frame, then gone
            const std::vector<std::uint8_t> bytes = net::make_request_frame(
                "tenant-0", trivial_request("half"));
            net::write_all(fd, bytes.data(), bytes.size() / 2, 500);
            break;
          }
          case 4: {  // full request, gone before the response
            const std::vector<std::uint8_t> bytes = net::make_request_frame(
                "tenant-0", trivial_request("ghost"));
            net::write_all(fd, bytes.data(), bytes.size(), 500);
            break;
          }
        }
        ::close(fd);
      }
      continue;
    }

    const std::uint64_t seed = base_seed + std::uint64_t(i);
    GenOptions gen;
    gen.use_timers = i % 4 == 3;
    net::WireRequest request;
    request.name = "serve-" + std::to_string(seed);
    request.source = generate_program(seed, gen);
    request.mode = 3;
    request.has_timers = gen.use_timers;
    request.max_ticks = 2'000'000;
    request.memory_estimate = 4u << 20;
    request.max_memory_bytes = 4u << 20;
    if (i % 7 == 5) request.deadline_ms = 250;

    net::AnalysisClient& client = *clients[std::size_t(i % 4)];
    net::WireResult result = client.roundtrip(request);
    if (result.kind == net::WireResult::Kind::Transport) {
      // One reconnect-and-retry: an idle-timeout close between requests is
      // lifecycle, not failure.
      client.close();
      if (client.connect(&error)) result = client.roundtrip(request);
    }
    if (!result.ok()) {
      ++failures;
      std::printf("SERVE FAIL seed=%llu: %s\n",
                  static_cast<unsigned long long>(seed),
                  describe(result).c_str());
    } else if (result.outcome.state != ServiceState::Shed &&
               result.outcome.session.runtime_fault) {
      ++failures;
      std::printf("SERVE FAIL seed=%llu: runtime fault: %s\n",
                  static_cast<unsigned long long>(seed),
                  result.outcome.session.error.c_str());
    }
  }
  clients.clear();

  std::string detail;
  if (!probe_alive(port, "tenant-0", &detail)) {
    ++failures;
    std::printf("SERVE FAIL: final liveness probe: %s\n", detail.c_str());
  }

  const net::ServerStats stats = box.server.stats();
  std::printf(
      "serve: %d slot(s) (%d hostile): accepted=%zu submitted=%zu "
      "responses=%zu error-frames=%zu malformed=%zu timed-out=%zu\n",
      count, hostile_slots, stats.connections_accepted,
      stats.requests_submitted, stats.responses_written, stats.error_frames,
      stats.malformed_frames, stats.connections_timed_out);
  std::printf("serve: %d failure(s)\n", failures);
  return failures > 99 ? 99 : failures;
}

}  // namespace jsceres::fuzz
