#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace jsceres::fuzz {

/// A failing fuzz case ready to be persisted to the corpus.
struct FailingCase {
  std::uint64_t seed = 0;
  std::string oracle;  // the oracle that flagged it
  std::string detail;  // how the executions diverged
  std::string source;  // generated program as-is
  std::string minimized;
};

/// Line-granular delta minimization: repeatedly drop contiguous line chunks
/// (halving granularity down to single lines) while `still_fails` keeps
/// returning true for the candidate. `still_fails` must be limit-respecting
/// (run candidates under the same sandbox as the original repro) — the
/// predicate is called O(lines) times. Returns the smallest source found.
std::string minimize_lines(
    const std::string& source,
    const std::function<bool(const std::string&)>& still_fails);

/// Persist `failing` under `corpus_dir` (created on demand) as
/// `seed<seed>_<oracle>.js` with a comment header carrying the seed, the
/// oracle name, and the divergence detail, followed by the minimized repro.
/// Returns the written path, or an empty string if the write failed.
std::string save_case(const std::string& corpus_dir, const FailingCase& failing);

}  // namespace jsceres::fuzz
