#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace jsceres::fuzz {

/// One wire-level hostile-client case: what was done to the server and
/// whether it ended the contractual way — a typed error frame (or orderly
/// close) AND the server still serving a fresh well-formed request
/// afterwards. Mirrors HostileReport for the engine-level suite.
struct NetHostileReport {
  std::string name;
  bool recovered = false;
  std::string detail;
};

/// The hostile-net suite from the robustness acceptance criteria: garbage
/// magic, an oversized length prefix, a zero-length-payload flood, a
/// slow-drip byte-at-a-time writer (slowloris), disconnect mid-response,
/// a flood past the connection cap, pipelining past the in-flight cap, and
/// a request-rate flood past the tenant quota. Spins its own loopback
/// server; every case must leave it accepting.
std::vector<NetHostileReport> run_hostile_net_suite();

/// Serve mode: start a real AnalysisService + AnalysisServer pair on the
/// loopback, stream `count` requests at it through the wire client —
/// generated programs, with every tenth slot replaced by a hostile-client
/// action — then run the in-process-vs-wire differential oracle over the
/// leading seeds: for the same request, AnalysisService::submit() directly
/// and a round-trip through the server must agree on ServiceState, final
/// mode, and console output (wire-only timeout/reject states may appear
/// only for the hostile slots). Returns the failure count (0 = green).
int run_serve_mode(std::uint64_t base_seed, int count);

}  // namespace jsceres::fuzz
